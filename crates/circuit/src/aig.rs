//! And-Inverter Graphs with structural hashing.
//!
//! The canonical intermediate representation of equivalence-checking
//! front-ends [4, 8]: every gate is a 2-input AND, inversion is a
//! complement bit on edges, and *structural hashing* merges syntactically
//! identical gates on construction. Converting a netlist to an AIG
//! before Tseitin encoding shrinks the CNF the SAT solver (and therefore
//! the proof checker) has to process.

use std::collections::HashMap;
use std::fmt;

use cnf::{Clause, CnfFormula, Var};

use crate::netlist::{Gate, Netlist};

/// An edge into an AIG node: a node index plus a complement bit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AigEdge(u32);

impl AigEdge {
    fn new(node: u32, complement: bool) -> Self {
        AigEdge(node << 1 | u32::from(complement))
    }

    /// The node this edge points to.
    #[must_use]
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the edge inverts the node's value.
    #[must_use]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented edge (logical NOT — free in an AIG).
    #[must_use]
    pub fn complement(self) -> Self {
        AigEdge(self.0 ^ 1)
    }
}

impl fmt::Debug for AigEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!a{}", self.node())
        } else {
            write!(f, "a{}", self.node())
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AigNode {
    /// Node 0: constant false.
    ConstFalse,
    /// A primary input (index into the input list).
    Input(usize),
    /// A 2-input AND of two edges.
    And(AigEdge, AigEdge),
}

/// An And-Inverter Graph.
///
/// # Examples
///
/// ```
/// use circuit::Aig;
///
/// let mut aig = Aig::new();
/// let a = aig.input();
/// let b = aig.input();
/// let g1 = aig.and2(a, b);
/// let g2 = aig.and2(b, a); // structurally identical
/// assert_eq!(g1, g2, "strashing merges commuted ANDs");
/// assert_eq!(aig.num_ands(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Aig {
    nodes: Vec<AigNode>,
    strash: HashMap<(AigEdge, AigEdge), u32>,
    num_inputs: usize,
    outputs: Vec<(String, AigEdge)>,
}

impl Aig {
    /// Creates an AIG containing only the constant node.
    #[must_use]
    pub fn new() -> Self {
        Aig {
            nodes: vec![AigNode::ConstFalse],
            strash: HashMap::new(),
            num_inputs: 0,
            outputs: Vec::new(),
        }
    }

    /// The constant-false edge.
    #[must_use]
    pub fn false_edge(&self) -> AigEdge {
        AigEdge::new(0, false)
    }

    /// The constant-true edge.
    #[must_use]
    pub fn true_edge(&self) -> AigEdge {
        AigEdge::new(0, true)
    }

    /// Adds a primary input.
    pub fn input(&mut self) -> AigEdge {
        let idx = self.num_inputs;
        self.num_inputs += 1;
        let node = self.push(AigNode::Input(idx));
        AigEdge::new(node, false)
    }

    fn push(&mut self, node: AigNode) -> u32 {
        let id = u32::try_from(self.nodes.len()).expect("aig fits in u32");
        self.nodes.push(node);
        id
    }

    /// AND of two edges, with constant folding and structural hashing.
    pub fn and2(&mut self, a: AigEdge, b: AigEdge) -> AigEdge {
        // constant folding
        if a == self.false_edge() || b == self.false_edge() || a == b.complement() {
            return self.false_edge();
        }
        if a == self.true_edge() {
            return b;
        }
        if b == self.true_edge() || a == b {
            return a;
        }
        // canonical operand order for hashing
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&node) = self.strash.get(&(a, b)) {
            return AigEdge::new(node, false);
        }
        let node = self.push(AigNode::And(a, b));
        self.strash.insert((a, b), node);
        AigEdge::new(node, false)
    }

    /// OR by De Morgan.
    pub fn or2(&mut self, a: AigEdge, b: AigEdge) -> AigEdge {
        self.and2(a.complement(), b.complement()).complement()
    }

    /// XOR from two ANDs.
    pub fn xor2(&mut self, a: AigEdge, b: AigEdge) -> AigEdge {
        let l = self.and2(a, b.complement());
        let r = self.and2(a.complement(), b);
        self.or2(l, r)
    }

    /// Multiplexer `sel ? a : b`.
    pub fn mux(&mut self, sel: AigEdge, a: AigEdge, b: AigEdge) -> AigEdge {
        let t = self.and2(sel, a);
        let e = self.and2(sel.complement(), b);
        self.or2(t, e)
    }

    /// Registers a named output.
    pub fn set_output(&mut self, name: impl Into<String>, edge: AigEdge) {
        self.outputs.push((name.into(), edge));
    }

    /// Named outputs.
    #[must_use]
    pub fn outputs(&self) -> &[(String, AigEdge)] {
        &self.outputs
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of AND nodes — the standard AIG size metric.
    #[must_use]
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, AigNode::And(_, _)))
            .count()
    }

    /// Total node count (constant + inputs + ANDs).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Evaluates the AIG on the given input values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of inputs.
    #[must_use]
    pub fn evaluate(&self, inputs: &[bool]) -> AigValues {
        assert_eq!(inputs.len(), self.num_inputs, "wrong number of input values");
        let mut values = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match *node {
                AigNode::ConstFalse => false,
                AigNode::Input(k) => inputs[k],
                AigNode::And(a, b) => {
                    (values[a.node()] ^ a.is_complemented())
                        && (values[b.node()] ^ b.is_complemented())
                }
            };
        }
        AigValues { values }
    }

    /// The edges of the primary inputs, in creation order.
    #[must_use]
    pub fn input_edges(&self) -> Vec<AigEdge> {
        let mut edges = vec![None; self.num_inputs];
        for (i, node) in self.nodes.iter().enumerate() {
            if let AigNode::Input(k) = node {
                edges[*k] = Some(AigEdge::new(i as u32, false));
            }
        }
        edges.into_iter().map(|e| e.expect("every input has a node")).collect()
    }

    /// The uncomplemented edge of the node at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn node_edge(&self, index: usize) -> AigEdge {
        assert!(index < self.nodes.len(), "node index out of range");
        AigEdge::new(index as u32, false)
    }

    /// Iterates the uncomplemented edge of every node, in topological
    /// order (constant, inputs, then ANDs) — the node universe a SAT
    /// sweep partitions into equivalence classes.
    pub fn edges(&self) -> impl Iterator<Item = AigEdge> {
        (0..self.nodes.len() as u32).map(|n| AigEdge::new(n, false))
    }

    /// The fan-in edges of the AND node at `index`, or `None` for the
    /// constant and input nodes.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn and_fanins(&self, index: usize) -> Option<(AigEdge, AigEdge)> {
        match self.nodes[index] {
            AigNode::And(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// Returns `true` when the input nodes occupy positions
    /// `1..=num_inputs` (i.e. all inputs were created before any AND) —
    /// the layout the AIGER writer requires.
    #[must_use]
    pub fn inputs_are_leading(&self) -> bool {
        self.nodes
            .iter()
            .skip(1)
            .take(self.num_inputs)
            .all(|n| matches!(n, AigNode::Input(_)))
    }

    /// Evaluates 64 input patterns at once, bit-parallel: `inputs[i]`
    /// packs 64 values of input `i`, one per bit; the result packs 64
    /// values per node. This is the workhorse of SAT sweeping, where
    /// random-simulation signatures partition nodes into candidate
    /// equivalence classes.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of inputs.
    #[must_use]
    pub fn evaluate64(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.num_inputs, "wrong number of input words");
        let mut values = vec![0u64; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match *node {
                AigNode::ConstFalse => 0,
                AigNode::Input(k) => inputs[k],
                AigNode::And(a, b) => {
                    let va = values[a.node()] ^ if a.is_complemented() { u64::MAX } else { 0 };
                    let vb = values[b.node()] ^ if b.is_complemented() { u64::MAX } else { 0 };
                    va & vb
                }
            };
        }
        values
    }

    /// Tseitin-encodes the AIG: one CNF variable per node, three clauses
    /// per AND. Returns the formula and the node→variable map; the
    /// constant node's variable is pinned false.
    #[must_use]
    pub fn encode(&self) -> AigEncoding {
        let mut formula = CnfFormula::new();
        let vars: Vec<Var> = (0..self.nodes.len()).map(|_| formula.new_var()).collect();
        for (i, node) in self.nodes.iter().enumerate() {
            let y = vars[i].positive();
            match *node {
                AigNode::ConstFalse => formula.add_clause(Clause::unit(!y)),
                AigNode::Input(_) => {}
                AigNode::And(a, b) => {
                    let la = vars[a.node()].lit(!a.is_complemented());
                    let lb = vars[b.node()].lit(!b.is_complemented());
                    formula.add_clause(Clause::binary(!y, la));
                    formula.add_clause(Clause::binary(!y, lb));
                    formula.add_clause(Clause::new(vec![y, !la, !lb]));
                }
            }
        }
        AigEncoding { formula, vars }
    }
}

/// Evaluated node values of an [`Aig`].
#[derive(Clone, Debug)]
pub struct AigValues {
    values: Vec<bool>,
}

impl AigValues {
    /// The value carried by an edge.
    #[must_use]
    pub fn edge(&self, e: AigEdge) -> bool {
        self.values[e.node()] ^ e.is_complemented()
    }
}

/// CNF encoding of an [`Aig`].
#[derive(Clone, Debug)]
pub struct AigEncoding {
    formula: CnfFormula,
    vars: Vec<Var>,
}

impl AigEncoding {
    /// The accumulated formula.
    #[must_use]
    pub fn formula(&self) -> &CnfFormula {
        &self.formula
    }

    /// The accumulated formula (consuming).
    #[must_use]
    pub fn into_formula(self) -> CnfFormula {
        self.formula
    }

    /// The literal representing an edge.
    #[must_use]
    pub fn lit(&self, e: AigEdge) -> cnf::Lit {
        self.vars[e.node()].lit(!e.is_complemented())
    }

    /// Constrains an edge to a fixed value.
    pub fn assert_edge(&mut self, e: AigEdge, value: bool) {
        let lit = if value { self.lit(e) } else { !self.lit(e) };
        self.formula.add_clause(Clause::unit(lit));
    }
}

/// Converts the combinational logic of a netlist into an AIG, with
/// structural hashing and constant folding applied on the fly. Latch
/// outputs become fresh AIG inputs appended after the primary inputs —
/// the usual "cut at the registers" view.
///
/// Returns the AIG and, for each netlist node, its AIG edge. The
/// netlist's named outputs are carried over.
#[must_use]
pub fn netlist_to_aig(netlist: &Netlist) -> (Aig, Vec<AigEdge>) {
    let mut aig = Aig::new();
    let mut map: Vec<AigEdge> = Vec::with_capacity(netlist.num_nodes());
    // primary inputs first so indices line up
    let mut input_edges = Vec::with_capacity(netlist.num_inputs());
    for _ in 0..netlist.num_inputs() {
        input_edges.push(aig.input());
    }
    for gate in netlist.gates() {
        let edge = match *gate {
            Gate::Input(i) => input_edges[i],
            Gate::Const(b) => {
                if b {
                    aig.true_edge()
                } else {
                    aig.false_edge()
                }
            }
            Gate::Not(x) => map[x.index()].complement(),
            Gate::And(a, b) => aig.and2(map[a.index()], map[b.index()]),
            Gate::Or(a, b) => aig.or2(map[a.index()], map[b.index()]),
            Gate::Xor(a, b) => aig.xor2(map[a.index()], map[b.index()]),
            Gate::Latch(_) => aig.input(), // cut at registers
        };
        map.push(edge);
    }
    for (name, node) in netlist.outputs() {
        aig.set_output(name.clone(), map[node.index()]);
    }
    (aig, map)
}

/// Encodes a netlist to CNF *through* an AIG — structural hashing and
/// constant folding first, Tseitin second — asserting `node` to `value`.
/// Produces an equisatisfiable but typically much smaller formula than
/// [`encode`](crate::encode) on the raw netlist.
#[must_use]
pub fn encode_via_aig(
    netlist: &Netlist,
    node: crate::netlist::NodeId,
    value: bool,
) -> CnfFormula {
    let (aig, map) = netlist_to_aig(netlist);
    let mut enc = aig.encode();
    enc.assert_edge(map[node.index()], value);
    enc.into_formula()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{barrel_shifter_decoded, ripple_carry_adder};
    use crate::sim::Simulator;

    #[test]
    fn folding_rules() {
        let mut aig = Aig::new();
        let a = aig.input();
        let f = aig.false_edge();
        let t = aig.true_edge();
        assert_eq!(aig.and2(a, f), f);
        assert_eq!(aig.and2(t, a), a);
        assert_eq!(aig.and2(a, a), a);
        assert_eq!(aig.and2(a, a.complement()), f);
        assert_eq!(aig.num_ands(), 0, "all folded");
    }

    #[test]
    fn strashing_merges_duplicates() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let x1 = aig.and2(a, b);
        let x2 = aig.and2(b, a);
        assert_eq!(x1, x2);
        let y1 = aig.or2(x1, c);
        let y2 = aig.or2(x2, c);
        assert_eq!(y1, y2);
        // xor built twice shares everything
        let z1 = aig.xor2(a, b);
        let z2 = aig.xor2(b, a);
        assert_eq!(z1, z2);
    }

    #[test]
    fn evaluation_matches_semantics() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let and = aig.and2(a, b);
        let or = aig.or2(a, b);
        let xor = aig.xor2(a, b);
        let m = aig.mux(a, b, xor);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let v = aig.evaluate(&[va, vb]);
            assert_eq!(v.edge(and), va && vb);
            assert_eq!(v.edge(or), va || vb);
            assert_eq!(v.edge(xor), va ^ vb);
            assert_eq!(v.edge(m), if va { vb } else { va ^ vb });
            assert_eq!(v.edge(a.complement()), !va);
        }
    }

    #[test]
    fn netlist_conversion_preserves_function() {
        let mut n = Netlist::new();
        let a = n.inputs(3);
        let b = n.inputs(3);
        let (sum, cout) = ripple_carry_adder(&mut n, &a, &b);
        for (i, &s) in sum.iter().enumerate() {
            n.set_output(format!("s{i}"), s);
        }
        n.set_output("cout", cout);
        let (aig, map) = netlist_to_aig(&n);
        let sim = Simulator::new(&n);
        for bits in 0u32..64 {
            let inputs: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            let vn = sim.evaluate(&inputs);
            let va = aig.evaluate(&inputs);
            for (_, node) in n.outputs() {
                assert_eq!(vn.node(*node), va.edge(map[node.index()]), "{bits:b}");
            }
        }
    }

    #[test]
    fn strashing_shrinks_redundant_structures() {
        // the decoded barrel shifter instantiates the same decoder terms
        // over and over — strashing must collapse a large fraction
        let mut n = Netlist::new();
        let a = n.inputs(8);
        let sh = n.inputs(3);
        let out = barrel_shifter_decoded(&mut n, &a, &sh);
        for (i, &o) in out.iter().enumerate() {
            n.set_output(format!("o{i}"), o);
        }
        let (aig, _) = netlist_to_aig(&n);
        assert!(
            aig.num_ands() * 2 < n.num_nodes(),
            "AIG ({} ands) should be much smaller than the netlist ({} nodes)",
            aig.num_ands(),
            n.num_nodes()
        );
    }

    #[test]
    fn encoding_is_consistent_with_evaluation() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.xor2(a, b);
        aig.set_output("x", x);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let expect = aig.evaluate(&[va, vb]).edge(x);
            let mut enc = aig.encode();
            enc.assert_edge(a, va);
            enc.assert_edge(b, vb);
            enc.assert_edge(x, !expect);
            assert!(
                !enc.formula().brute_force_satisfiable(),
                "wrong output value must be unsatisfiable"
            );
            let mut enc2 = aig.encode();
            enc2.assert_edge(a, va);
            enc2.assert_edge(b, vb);
            enc2.assert_edge(x, expect);
            assert!(enc2.formula().brute_force_satisfiable());
        }
    }

    #[test]
    fn encode_via_aig_is_equisatisfiable_and_smaller() {
        use crate::miter::build_miter;
        use crate::blocks::carry_select_adder;
        let width = 4;
        let (netlist, diff) = build_miter(
            2 * width,
            |n, io| {
                let (s, c) = ripple_carry_adder(n, &io[..width], &io[width..]);
                let mut out = s; out.push(c); out
            },
            |n, io| {
                let (s, c) = carry_select_adder(n, &io[..width], &io[width..], 2);
                let mut out = s; out.push(c); out
            },
        );
        let via_aig = encode_via_aig(&netlist, diff, true);
        let mut plain = crate::tseitin::encode(&netlist);
        plain.assert_node(diff, true);
        let plain = plain.into_formula();
        assert!(via_aig.num_clauses() < plain.num_clauses(),
            "aig {} vs plain {}", via_aig.num_clauses(), plain.num_clauses());
        // both UNSAT (equivalent adders)
        assert!(cdcl::solve(&via_aig, cdcl::SolverConfig::default()).is_unsat());
        assert!(cdcl::solve(&plain, cdcl::SolverConfig::default()).is_unsat());
    }

    #[test]
    fn evaluate64_agrees_with_scalar_evaluation() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let g1 = aig.and2(a, b);
        let g2 = aig.xor2(g1, c);
        let g3 = aig.mux(c, a, g2);
        // pack all 8 input combinations into the low bits of one word
        let words: Vec<u64> = (0..3)
            .map(|i| {
                (0u64..8).fold(0, |acc, bits| acc | ((bits >> i & 1) << bits))
            })
            .collect();
        let wide = aig.evaluate64(&words);
        for bits in 0..8u64 {
            let scalar: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let v = aig.evaluate(&scalar);
            for e in [g1, g2, g3] {
                let wide_bit = (wide[e.node()] >> bits) & 1 == 1;
                assert_eq!(
                    wide_bit ^ e.is_complemented(),
                    v.edge(e),
                    "edge {e:?} at {bits:b}"
                );
            }
        }
    }

    #[test]
    fn latches_become_cut_inputs() {
        let mut n = Netlist::new();
        let q = n.latch(false);
        let nq = n.not(q);
        n.connect_next(q, nq);
        n.set_output("q", q);
        let (aig, _) = netlist_to_aig(&n);
        assert_eq!(aig.num_inputs(), 1, "latch output becomes an input");
    }
}
