//! Gate-level circuit substrate: netlists, simulation, Tseitin CNF
//! encoding, bounded-model-checking unrolling, and equivalence miters.
//!
//! The paper evaluates on CNFs from microprocessor verification,
//! equivalence checking, and bounded model checking; this crate builds
//! the machinery to *synthesize* workloads of the same shape (the
//! originals are not publicly archived — see `DESIGN.md` §3 for the
//! substitution table).
//!
//! # Examples
//!
//! An equivalence-checking miter over two adder architectures:
//!
//! ```
//! use circuit::{miter_formula, ripple_carry_adder, carry_select_adder};
//!
//! let width = 3;
//! let formula = miter_formula(
//!     2 * width,
//!     |n, io| {
//!         let (sum, c) = ripple_carry_adder(n, &io[..width], &io[width..]);
//!         let mut out = sum; out.push(c); out
//!     },
//!     |n, io| {
//!         let (sum, c) = carry_select_adder(n, &io[..width], &io[width..], 2);
//!         let mut out = sum; out.push(c); out
//!     },
//! );
//! // equivalent circuits → UNSAT miter
//! assert!(cdcl::solve(&formula, cdcl::SolverConfig::default()).is_unsat());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aig;
mod aiger;
mod blocks;
mod bmc;
mod miter;
mod netlist;
mod sec;
mod sim;
mod text;
mod tseitin;

pub use aig::{encode_via_aig, netlist_to_aig, Aig, AigEdge, AigEncoding, AigValues};
pub use aiger::{parse_aiger, write_aiger, AigerFile, AigerLatch, ParseAigerError};
pub use blocks::{
    alu, barrel_shifter_decoded, barrel_shifter_log, carry_select_adder, counter,
    full_adder, lfsr, ripple_carry_adder, shift_add_multiplier, AluStyle, Bus,
};
pub use bmc::{bmc_formula, Unrolling};
pub use miter::{build_miter, miter_formula};
pub use netlist::{Gate, Latch, Netlist, NodeId};
pub use sec::{build_product_machine, sec_formula};
pub use sim::{CycleValues, Simulator};
pub use text::{
    parse_netlist, parse_netlist_str, to_netlist_string, write_netlist,
    ParseNetlistError,
};
pub use tseitin::{encode, Encoding};
