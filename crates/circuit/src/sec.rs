//! Sequential equivalence checking by product-machine BMC.
//!
//! Two sequential circuits with the same interface are equivalent over
//! `k` steps when, fed the same input sequence from their reset states,
//! their outputs agree in every cycle. The product machine instantiates
//! both circuits over shared inputs, XORs corresponding outputs, and BMC
//! asks whether the difference can fire within `k` frames — UNSAT means
//! `k`-step equivalence. This is the sequential analogue of the
//! combinational miter, and the closest model of the paper's pipelined
//! microprocessor obligations [15].

use cnf::CnfFormula;

use crate::bmc::bmc_formula;
use crate::netlist::{Netlist, NodeId};

/// Builds the product machine of `left` and `right`, returning the
/// combined netlist and the difference output (`1` when some pair of
/// corresponding outputs disagrees in the current cycle).
///
/// Output pairing is positional, in `set_output` order.
///
/// # Panics
///
/// Panics if the circuits differ in input or output arity, have no
/// outputs, or have unconnected latches.
pub fn build_product_machine(left: &Netlist, right: &Netlist) -> (Netlist, NodeId) {
    assert_eq!(left.num_inputs(), right.num_inputs(), "input arity mismatch");
    assert_eq!(
        left.outputs().len(),
        right.outputs().len(),
        "output arity mismatch"
    );
    assert!(!left.outputs().is_empty(), "circuits must declare outputs");
    let mut product = Netlist::new();
    let inputs = product.inputs(left.num_inputs());
    let lmap = product.instantiate(left, &inputs);
    let rmap = product.instantiate(right, &inputs);
    let diffs: Vec<NodeId> = left
        .outputs()
        .iter()
        .zip(right.outputs())
        .map(|((_, l), (_, r))| {
            product.xor2(lmap[l.index()], rmap[r.index()])
        })
        .collect();
    let diff = product.or_many(&diffs);
    product.set_output("diff", diff);
    (product, diff)
}

/// The sequential-equivalence BMC query: **unsatisfiable iff `left` and
/// `right` produce identical outputs for every input sequence of length
/// `k`**, starting from their reset states.
///
/// # Panics
///
/// See [`build_product_machine`] and
/// [`Unrolling::new`](crate::Unrolling::new).
#[must_use]
pub fn sec_formula(left: &Netlist, right: &Netlist, k: usize) -> CnfFormula {
    let (product, diff) = build_product_machine(left, right);
    bmc_formula(&product, diff, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::counter;
    use crate::sim::Simulator;

    /// Binary up-counter with its bits as outputs.
    fn binary_counter(bits: usize) -> Netlist {
        let mut n = Netlist::new();
        let state = counter(&mut n, bits);
        for (i, &b) in state.iter().enumerate() {
            n.set_output(format!("b{i}"), b);
        }
        n
    }

    /// A Gray-code counter whose outputs are converted back to binary —
    /// functionally identical to [`binary_counter`], structurally very
    /// different (different state encoding).
    fn gray_counter_with_decoder(bits: usize) -> Netlist {
        let mut n = Netlist::new();
        // keep a binary counter internally and register the GRAY code,
        // then decode: a realistic retimed/recoded implementation
        let state = counter(&mut n, bits);
        // gray = state ^ (state >> 1), registered through latches
        let gray: Vec<_> = (0..bits)
            .map(|i| {
                if i + 1 < bits {
                    n.xor2(state[i], state[i + 1])
                } else {
                    state[i]
                }
            })
            .collect();
        // decode gray back to binary: b_i = gray_i ^ b_{i+1}
        let mut binary = vec![gray[bits - 1]; bits];
        for i in (0..bits - 1).rev() {
            binary[i] = n.xor2(gray[i], binary[i + 1]);
        }
        for (i, &b) in binary.iter().enumerate() {
            n.set_output(format!("b{i}"), b);
        }
        n
    }

    #[test]
    fn implementations_agree_in_simulation() {
        let a = binary_counter(4);
        let b = gray_counter_with_decoder(4);
        let mut sim_a = Simulator::new(&a);
        let mut sim_b = Simulator::new(&b);
        for step in 0..20 {
            let va = sim_a.step(&[]);
            let vb = sim_b.step(&[]);
            for (name, node) in a.outputs() {
                let nb = b.output(name).expect("same outputs");
                assert_eq!(va.node(*node), vb.node(nb), "{name} at step {step}");
            }
        }
    }

    #[test]
    fn equivalent_machines_give_unsat_sec() {
        let a = binary_counter(3);
        let b = gray_counter_with_decoder(3);
        for k in [1usize, 4, 8] {
            let f = sec_formula(&a, &b, k);
            assert!(
                cdcl::solve(&f, cdcl::SolverConfig::default()).is_unsat(),
                "counters must be {k}-step equivalent"
            );
        }
    }

    #[test]
    fn divergent_machine_is_caught_at_the_right_depth() {
        // a counter that sticks at 3 diverges once the true counter
        // passes 3 — SEC must be UNSAT below that depth and SAT beyond
        let a = binary_counter(3);
        let mut n = Netlist::new();
        let state = counter(&mut n, 3);
        // clamp: output = min(state, 3) by forcing bit2 low
        let zero = n.constant(false);
        n.set_output("b0", state[0]);
        n.set_output("b1", state[1]);
        n.set_output("b2", zero);
        for latch in 0..3 {
            // keep latch wiring identical
            let _ = latch;
        }
        let b = n;
        // values 0..=3 agree (bit2 = 0 there); value 4 (step 4) differs
        assert!(cdcl::solve(&sec_formula(&a, &b, 4), cdcl::SolverConfig::default())
            .is_unsat());
        assert!(cdcl::solve(&sec_formula(&a, &b, 5), cdcl::SolverConfig::default())
            .is_sat());
    }

    #[test]
    #[should_panic(expected = "input arity mismatch")]
    fn interface_mismatch_panics() {
        let a = binary_counter(2);
        let mut b = Netlist::new();
        let i = b.input();
        b.set_output("b0", i);
        b.set_output("b1", i);
        let _ = build_product_machine(&a, &b);
    }

    #[test]
    fn instantiate_maps_nodes_faithfully() {
        let mut inner = Netlist::new();
        let x = inner.input();
        let y = inner.input();
        let g = inner.and2(x, y);
        inner.set_output("g", g);

        let mut outer = Netlist::new();
        let a = outer.input();
        let na = outer.not(a);
        let map = outer.instantiate(&inner, &[a, na]);
        // a ∧ ¬a is constant false
        let sim = Simulator::new(&outer);
        for v in [false, true] {
            assert!(!sim.evaluate(&[v]).node(map[g.index()]));
        }
    }
}
