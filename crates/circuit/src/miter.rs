//! Equivalence-checking miters.
//!
//! The miter construction of combinational equivalence checking [4, 8]:
//! feed the same inputs to two circuits, XOR corresponding outputs, OR
//! the differences, and assert the result — the CNF is unsatisfiable iff
//! the circuits are equivalent.

use cnf::CnfFormula;

use crate::netlist::{Netlist, NodeId};
use crate::tseitin::encode;

/// Builds a miter netlist from two circuit-builder closures that share
/// the same input bus, returning the netlist and the difference output.
///
/// Each builder receives the netlist and the shared inputs and returns
/// its output bus.
///
/// # Panics
///
/// Panics if the two builders return buses of different widths.
pub fn build_miter(
    num_inputs: usize,
    left: impl FnOnce(&mut Netlist, &[NodeId]) -> Vec<NodeId>,
    right: impl FnOnce(&mut Netlist, &[NodeId]) -> Vec<NodeId>,
) -> (Netlist, NodeId) {
    let mut n = Netlist::new();
    let inputs = n.inputs(num_inputs);
    let lout = left(&mut n, &inputs);
    let rout = right(&mut n, &inputs);
    assert_eq!(lout.len(), rout.len(), "output width mismatch");
    let diffs: Vec<NodeId> =
        lout.iter().zip(&rout).map(|(&a, &b)| n.xor2(a, b)).collect();
    let diff = n.or_many(&diffs);
    n.set_output("diff", diff);
    (n, diff)
}

/// Encodes a miter as CNF with the difference output asserted:
/// **unsatisfiable iff the two circuits are equivalent**.
#[must_use]
pub fn miter_formula(
    num_inputs: usize,
    left: impl FnOnce(&mut Netlist, &[NodeId]) -> Vec<NodeId>,
    right: impl FnOnce(&mut Netlist, &[NodeId]) -> Vec<NodeId>,
) -> CnfFormula {
    let (netlist, diff) = build_miter(num_inputs, left, right);
    let mut enc = encode(&netlist);
    enc.assert_node(diff, true);
    enc.into_formula()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{carry_select_adder, ripple_carry_adder};

    #[test]
    fn equivalent_adders_yield_unsat_miter() {
        let width = 3;
        let formula = miter_formula(
            2 * width,
            |n, inputs| {
                let (sum, cout) =
                    ripple_carry_adder(n, &inputs[..width], &inputs[width..]);
                let mut out = sum;
                out.push(cout);
                out
            },
            |n, inputs| {
                let (sum, cout) =
                    carry_select_adder(n, &inputs[..width], &inputs[width..], 2);
                let mut out = sum;
                out.push(cout);
                out
            },
        );
        assert!(
            cdcl::solve(&formula, cdcl::SolverConfig::default()).is_unsat(),
            "equivalent adders must give an UNSAT miter"
        );
    }

    #[test]
    fn buggy_circuit_yields_sat_miter() {
        let width = 2;
        let formula = miter_formula(
            2 * width,
            |n, inputs| {
                let (sum, _) = ripple_carry_adder(n, &inputs[..width], &inputs[width..]);
                sum
            },
            |n, inputs| {
                // "adder" that just ORs the operands — wrong
                inputs[..width]
                    .iter()
                    .zip(&inputs[width..])
                    .map(|(&a, &b)| n.or2(a, b))
                    .collect()
            },
        );
        assert!(
            cdcl::solve(&formula, cdcl::SolverConfig::default()).is_sat(),
            "a buggy implementation must give a SAT miter"
        );
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let _ = build_miter(
            2,
            |_, inputs| vec![inputs[0]],
            |_, inputs| vec![inputs[0], inputs[1]],
        );
    }
}
