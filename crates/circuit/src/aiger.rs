//! AIGER ASCII (`aag`) format support.
//!
//! AIGER is the interchange format of the hardware model-checking
//! community; supporting it lets real benchmark circuits flow into this
//! workspace's pipeline. The ASCII variant is implemented:
//!
//! ```text
//! aag M I L O A
//! <I input literal lines>
//! <L latch lines: current next [init]>
//! <O output literal lines>
//! <A and lines: lhs rhs0 rhs1>
//! ```
//!
//! Literals are `2·var (+1 if negated)`; literal 0 is constant false,
//! literal 1 constant true. Latch reset defaults to 0 per the AIGER 1.9
//! convention; an optional third field gives 0/1 (symbolic resets are
//! not supported).

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

use crate::aig::{Aig, AigEdge};

/// An error produced while parsing an AIGER file.
#[derive(Debug)]
pub enum ParseAigerError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or malformed `aag` header.
    BadHeader {
        /// The header line as read.
        text: String,
    },
    /// A malformed body line.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// An AND's left-hand side is not an even, fresh literal, or a
    /// right-hand side refers to an undefined variable.
    BadAnd {
        /// 1-based line number.
        line: usize,
    },
    /// The file uses a feature this reader does not support (symbolic
    /// latch resets, binary `aig` format).
    Unsupported {
        /// Description of the unsupported feature.
        what: &'static str,
    },
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAigerError::Io(e) => write!(f, "i/o error: {e}"),
            ParseAigerError::BadHeader { text } => {
                write!(f, "malformed aag header {text:?}")
            }
            ParseAigerError::BadLine { line, text } => {
                write!(f, "line {line}: malformed line {text:?}")
            }
            ParseAigerError::BadAnd { line } => {
                write!(f, "line {line}: invalid and-gate definition")
            }
            ParseAigerError::Unsupported { what } => write!(f, "unsupported: {what}"),
        }
    }
}

impl Error for ParseAigerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseAigerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseAigerError {
    fn from(e: io::Error) -> Self {
        ParseAigerError::Io(e)
    }
}

/// A latch read from an AIGER file (cut open as an extra input in the
/// returned combinational [`Aig`]).
#[derive(Clone, Copy, Debug)]
pub struct AigerLatch {
    /// The edge representing the latch's current state.
    pub state: AigEdge,
    /// The edge computing the next state.
    pub next: AigEdge,
    /// Reset value.
    pub init: bool,
}

/// The result of [`parse_aiger`].
#[derive(Clone, Debug)]
pub struct AigerFile {
    /// The combinational AIG (latches appear as extra inputs appended
    /// after the primary inputs, in latch order).
    pub aig: Aig,
    /// Number of *primary* inputs (the first `num_inputs` AIG inputs).
    pub num_inputs: usize,
    /// The latches.
    pub latches: Vec<AigerLatch>,
    /// Output edges, in file order.
    pub outputs: Vec<AigEdge>,
}

/// Parses an AIGER ASCII (`aag`) file.
///
/// # Errors
///
/// Returns [`ParseAigerError`] on I/O failure or malformed input.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // half adder: sum = i0 ^ i1 (via 3 ands), carry = i0 & i1
/// let text = "aag 5 2 0 2 3\n2\n4\n10\n6\n6 2 4\n8 3 5\n10 7 9\n";
/// let file = circuit::parse_aiger(text.as_bytes())?;
/// assert_eq!(file.num_inputs, 2);
/// assert_eq!(file.outputs.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_aiger<R: BufRead>(reader: R) -> Result<AigerFile, ParseAigerError> {
    let mut lines = reader.lines().enumerate();
    let header = loop {
        match lines.next() {
            Some((_, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break line;
                }
            }
            None => {
                return Err(ParseAigerError::BadHeader { text: String::new() })
            }
        }
    };
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.first() == Some(&"aig") {
        return Err(ParseAigerError::Unsupported { what: "binary aig format" });
    }
    if fields.len() != 6 || fields[0] != "aag" {
        return Err(ParseAigerError::BadHeader { text: header.clone() });
    }
    let nums: Vec<usize> = fields[1..]
        .iter()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|_| ParseAigerError::BadHeader { text: header.clone() })?;
    let (max_var, num_inputs, num_latches, num_outputs, num_ands) =
        (nums[0], nums[1], nums[2], nums[3], nums[4]);

    let mut next_line = |expect: &str| -> Result<(usize, String), ParseAigerError> {
        for (lineno, line) in lines.by_ref() {
            let line = line?;
            if line.trim().is_empty() || line.trim_start().starts_with('c') {
                // 'c' begins the comment section in AIGER; stop reading
                if line.trim_start().starts_with('c') {
                    return Err(ParseAigerError::BadLine {
                        line: lineno + 1,
                        text: format!("unexpected end of {expect} section"),
                    });
                }
                continue;
            }
            return Ok((lineno + 1, line));
        }
        Err(ParseAigerError::BadLine { line: 0, text: format!("missing {expect} line") })
    };

    // variable → AIG edge map; var 0 = constant
    let mut aig = Aig::new();
    let mut var_edge: Vec<Option<AigEdge>> = vec![None; max_var + 1];
    var_edge[0] = Some(aig.false_edge());

    let edge_of = |var_edge: &[Option<AigEdge>], lit: usize| -> Option<AigEdge> {
        let base = (*var_edge.get(lit / 2)?)?;
        Some(if lit % 2 == 1 { base.complement() } else { base })
    };

    // inputs
    for _ in 0..num_inputs {
        let (lineno, line) = next_line("input")?;
        let lit: usize = line.trim().parse().map_err(|_| ParseAigerError::BadLine {
            line: lineno,
            text: line.clone(),
        })?;
        if !lit.is_multiple_of(2) || lit / 2 > max_var {
            return Err(ParseAigerError::BadLine { line: lineno, text: line });
        }
        let e = aig.input();
        var_edge[lit / 2] = Some(e);
    }
    // latches: states become extra inputs; next-state literals resolved
    // after the AND section
    let mut latch_raw = Vec::with_capacity(num_latches);
    for _ in 0..num_latches {
        let (lineno, line) = next_line("latch")?;
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 2 || fields.len() > 3 {
            return Err(ParseAigerError::BadLine { line: lineno, text: line });
        }
        let state: usize = fields[0]
            .parse()
            .map_err(|_| ParseAigerError::BadLine { line: lineno, text: line.clone() })?;
        let next: usize = fields[1]
            .parse()
            .map_err(|_| ParseAigerError::BadLine { line: lineno, text: line.clone() })?;
        let init = match fields.get(2) {
            None | Some(&"0") => false,
            Some(&"1") => true,
            Some(_) => {
                return Err(ParseAigerError::Unsupported {
                    what: "symbolic latch reset",
                })
            }
        };
        if !state.is_multiple_of(2) || state / 2 > max_var {
            return Err(ParseAigerError::BadLine { line: lineno, text: line });
        }
        let e = aig.input();
        var_edge[state / 2] = Some(e);
        latch_raw.push((e, next, init, lineno));
    }
    // outputs (literals resolved after ANDs)
    let mut output_raw = Vec::with_capacity(num_outputs);
    for _ in 0..num_outputs {
        let (lineno, line) = next_line("output")?;
        let lit: usize = line.trim().parse().map_err(|_| ParseAigerError::BadLine {
            line: lineno,
            text: line.clone(),
        })?;
        output_raw.push((lit, lineno));
    }
    // ands (AIGER requires topological order: rhs vars already defined)
    for _ in 0..num_ands {
        let (lineno, line) = next_line("and")?;
        let fields: Vec<usize> = line
            .split_whitespace()
            .map(|t| t.parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| ParseAigerError::BadLine { line: lineno, text: line.clone() })?;
        let [lhs, rhs0, rhs1] = fields.as_slice() else {
            return Err(ParseAigerError::BadLine { line: lineno, text: line });
        };
        if lhs % 2 != 0 || lhs / 2 > max_var || var_edge[lhs / 2].is_some() {
            return Err(ParseAigerError::BadAnd { line: lineno });
        }
        let a = edge_of(&var_edge, *rhs0)
            .ok_or(ParseAigerError::BadAnd { line: lineno })?;
        let b = edge_of(&var_edge, *rhs1)
            .ok_or(ParseAigerError::BadAnd { line: lineno })?;
        var_edge[lhs / 2] = Some(aig.and2(a, b));
    }

    // resolve deferred literals
    let mut latches = Vec::with_capacity(num_latches);
    for (state, next_lit, init, lineno) in latch_raw {
        let next = edge_of(&var_edge, next_lit)
            .ok_or(ParseAigerError::BadLine { line: lineno, text: "latch next".into() })?;
        latches.push(AigerLatch { state, next, init });
    }
    let mut outputs = Vec::with_capacity(num_outputs);
    for (i, (lit, lineno)) in output_raw.into_iter().enumerate() {
        let e = edge_of(&var_edge, lit)
            .ok_or(ParseAigerError::BadLine { line: lineno, text: "output".into() })?;
        aig.set_output(format!("o{i}"), e);
        outputs.push(e);
    }

    Ok(AigerFile { aig, num_inputs, latches, outputs })
}

/// Writes a combinational [`Aig`] in AIGER ASCII format (no latches —
/// this workspace's AIGs cut latches into inputs; outputs come from
/// [`Aig::outputs`]).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Panics
///
/// Panics if some AND node precedes an input node (AIGER numbers inputs
/// first; [`netlist_to_aig`](crate::netlist_to_aig) and manual AIGs that
/// declare inputs up front satisfy this).
pub fn write_aiger<W: Write>(mut writer: W, aig: &Aig) -> io::Result<()> {
    // map: AIG node → AIGER variable (constant = 0, inputs, then ANDs)
    assert!(
        aig.inputs_are_leading(),
        "AIGER writer requires all inputs created before any AND \
         (netlist_to_aig produces this layout)"
    );
    let num_inputs = aig.num_inputs();
    let num_ands = aig.num_ands();
    let max_var = num_inputs + num_ands;
    writeln!(
        writer,
        "aag {max_var} {num_inputs} 0 {} {num_ands}",
        aig.outputs().len()
    )?;
    // node index → aiger var: node 0 (const) → 0; others in order
    let var_of_node = |node: usize| -> usize { node };
    let lit_of = |e: AigEdge| -> usize {
        2 * var_of_node(e.node()) + usize::from(e.is_complemented())
    };
    for i in 0..num_inputs {
        writeln!(writer, "{}", 2 * (i + 1))?;
    }
    for (_, e) in aig.outputs() {
        writeln!(writer, "{}", lit_of(*e))?;
    }
    for e in aig.edges() {
        if let Some((a, b)) = aig.and_fanins(e.node()) {
            writeln!(writer, "{} {} {}", lit_of(e), lit_of(a), lit_of(b))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_half_adder() {
        let text = "aag 5 2 0 2 3\n2\n4\n10\n6\n6 2 4\n8 3 5\n10 7 9\n";
        let file = parse_aiger(text.as_bytes()).expect("parse");
        assert_eq!(file.num_inputs, 2);
        assert_eq!(file.outputs.len(), 2);
        assert_eq!(file.aig.num_ands(), 3);
        // outputs: o0 = xor (lit 10), o1 = and (lit 6)
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let v = file.aig.evaluate(&[a, b]);
            assert_eq!(v.edge(file.outputs[0]), a ^ b, "sum at {a}{b}");
            assert_eq!(v.edge(file.outputs[1]), a && b, "carry at {a}{b}");
        }
    }

    #[test]
    fn parses_latches_as_cut_inputs() {
        // toggle flip-flop: latch 2 with next = ¬2 (lit 3); output = 2
        let text = "aag 1 0 1 1 0\n2 3 1\n2\n";
        let file = parse_aiger(text.as_bytes()).expect("parse");
        assert_eq!(file.num_inputs, 0);
        assert_eq!(file.latches.len(), 1);
        assert!(file.latches[0].init);
        assert_eq!(file.latches[0].next, file.latches[0].state.complement());
    }

    #[test]
    fn constants_work() {
        // output = constant true (lit 1)
        let text = "aag 0 0 0 1 0\n1\n";
        let file = parse_aiger(text.as_bytes()).expect("parse");
        let v = file.aig.evaluate(&[]);
        assert!(v.edge(file.outputs[0]));
    }

    #[test]
    fn rejects_binary_format_and_bad_headers() {
        assert!(matches!(
            parse_aiger(&b"aig 1 0 0 0 0\n"[..]).unwrap_err(),
            ParseAigerError::Unsupported { .. }
        ));
        assert!(matches!(
            parse_aiger(&b"nonsense\n"[..]).unwrap_err(),
            ParseAigerError::BadHeader { .. }
        ));
        assert!(matches!(
            parse_aiger(&b""[..]).unwrap_err(),
            ParseAigerError::BadHeader { .. }
        ));
    }

    #[test]
    fn rejects_redefined_and() {
        // lhs 2 collides with the input literal 2
        let text = "aag 2 1 0 0 1\n2\n2 1 1\n";
        assert!(matches!(
            parse_aiger(text.as_bytes()).unwrap_err(),
            ParseAigerError::BadAnd { .. }
        ));
    }

    #[test]
    fn roundtrip_through_writer() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.xor2(a, b);
        let g = aig.and2(a, x.complement());
        aig.set_output("x", x);
        aig.set_output("g", g);

        let mut buf = Vec::new();
        write_aiger(&mut buf, &aig).expect("write");
        let file = parse_aiger(buf.as_slice()).expect("own output parses");
        assert_eq!(file.num_inputs, 2);
        for bits in 0u32..4 {
            let inputs: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            let v1 = aig.evaluate(&inputs);
            let v2 = file.aig.evaluate(&inputs);
            assert_eq!(v1.edge(x), v2.edge(file.outputs[0]), "{bits:b}");
            assert_eq!(v1.edge(g), v2.edge(file.outputs[1]), "{bits:b}");
        }
    }
}
