//! Cycle-accurate netlist simulation — the ground-truth oracle for the
//! encoder, BMC, and miter tests.

use crate::netlist::{Gate, Netlist, NodeId};

/// A simulator holding the latch state of a [`Netlist`].
///
/// # Examples
///
/// ```
/// use circuit::{Netlist, Simulator};
///
/// let mut n = Netlist::new();
/// let a = n.input();
/// let b = n.input();
/// let s = n.xor2(a, b);
/// n.set_output("sum", s);
///
/// let mut sim = Simulator::new(&n);
/// let values = sim.step(&[true, false]);
/// assert!(values.node(s));
/// ```
#[derive(Clone, Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    state: Vec<bool>,
}

/// The node values of one simulated cycle.
#[derive(Clone, Debug)]
pub struct CycleValues {
    values: Vec<bool>,
}

impl CycleValues {
    /// The value of a node in this cycle.
    #[must_use]
    pub fn node(&self, id: NodeId) -> bool {
        self.values[id.index()]
    }
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with all latches at their reset values.
    ///
    /// # Panics
    ///
    /// Panics if some latch has no next-state function.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        assert!(
            netlist.latches().iter().all(|l| l.next.is_some()),
            "all latches must be connected before simulation"
        );
        let state = netlist.latches().iter().map(|l| l.init).collect();
        Simulator { netlist, state }
    }

    /// The current latch state.
    #[must_use]
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Evaluates one cycle with the given input values and advances the
    /// latch state.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary
    /// inputs, or if the netlist contains a combinational cycle
    /// (a gate referencing a later node that is not a latch).
    pub fn step(&mut self, inputs: &[bool]) -> CycleValues {
        let values = self.evaluate(inputs);
        self.state = self
            .netlist
            .latches()
            .iter()
            .map(|l| values.node(l.next.expect("connected")))
            .collect();
        values
    }

    /// Evaluates the combinational logic for the current state without
    /// advancing it.
    ///
    /// # Panics
    ///
    /// See [`Simulator::step`].
    #[must_use]
    pub fn evaluate(&self, inputs: &[bool]) -> CycleValues {
        assert_eq!(
            inputs.len(),
            self.netlist.num_inputs(),
            "wrong number of input values"
        );
        let mut values = vec![false; self.netlist.num_nodes()];
        for (i, gate) in self.netlist.gates().iter().enumerate() {
            let check = |dep: NodeId| {
                assert!(dep.index() < i, "combinational cycle through node {i}");
                values[dep.index()]
            };
            values[i] = match *gate {
                Gate::Input(k) => inputs[k],
                Gate::Const(b) => b,
                Gate::Not(x) => !check(x),
                Gate::And(a, b) => check(a) && check(b),
                Gate::Or(a, b) => check(a) || check(b),
                Gate::Xor(a, b) => check(a) ^ check(b),
                Gate::Latch(k) => self.state[k],
            };
        }
        CycleValues { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_gates_evaluate() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let and = n.and2(a, b);
        let or = n.or2(a, b);
        let xor = n.xor2(a, b);
        let na = n.not(a);
        let t = n.constant(true);

        let sim = Simulator::new(&n);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let v = sim.evaluate(&[va, vb]);
            assert_eq!(v.node(and), va && vb);
            assert_eq!(v.node(or), va || vb);
            assert_eq!(v.node(xor), va ^ vb);
            assert_eq!(v.node(na), !va);
            assert!(v.node(t));
        }
    }

    #[test]
    fn mux_selects() {
        let mut n = Netlist::new();
        let s = n.input();
        let a = n.input();
        let b = n.input();
        let m = n.mux(s, a, b);
        let sim = Simulator::new(&n);
        assert!(sim.evaluate(&[true, true, false]).node(m));
        assert!(!sim.evaluate(&[true, false, true]).node(m));
        assert!(sim.evaluate(&[false, false, true]).node(m));
        assert!(!sim.evaluate(&[false, true, false]).node(m));
    }

    #[test]
    fn toggle_flip_flop_oscillates() {
        let mut n = Netlist::new();
        let q = n.latch(false);
        let nq = n.not(q);
        n.connect_next(q, nq);
        let mut sim = Simulator::new(&n);
        let mut seen = Vec::new();
        for _ in 0..4 {
            let v = sim.step(&[]);
            seen.push(v.node(q));
        }
        assert_eq!(seen, vec![false, true, false, true]);
    }

    #[test]
    fn counter_counts() {
        // 2-bit counter: b0' = ¬b0, b1' = b1 ⊕ b0
        let mut n = Netlist::new();
        let b0 = n.latch(false);
        let b1 = n.latch(false);
        let nb0 = n.not(b0);
        let carry = n.xor2(b1, b0);
        n.connect_next(b0, nb0);
        n.connect_next(b1, carry);
        let mut sim = Simulator::new(&n);
        let mut values = Vec::new();
        for _ in 0..5 {
            let v = sim.step(&[]);
            values.push((v.node(b1), v.node(b0)));
        }
        assert_eq!(
            values,
            vec![
                (false, false),
                (false, true),
                (true, false),
                (true, true),
                (false, false)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "wrong number of input values")]
    fn input_arity_checked() {
        let mut n = Netlist::new();
        n.input();
        let sim = Simulator::new(&n);
        let _ = sim.evaluate(&[]);
    }

    #[test]
    #[should_panic(expected = "must be connected")]
    fn unconnected_latch_rejected() {
        let mut n = Netlist::new();
        n.latch(false);
        let _ = Simulator::new(&n);
    }
}
