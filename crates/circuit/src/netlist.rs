//! Gate-level netlists.

use std::fmt;

/// A node in a [`Netlist`], identified by a dense index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Returns the dense index of this node.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A gate driving a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Gate {
    /// A primary input (index into the input list).
    Input(usize),
    /// A constant.
    Const(bool),
    /// Inverter.
    Not(NodeId),
    /// 2-input AND.
    And(NodeId, NodeId),
    /// 2-input OR.
    Or(NodeId, NodeId),
    /// 2-input XOR.
    Xor(NodeId, NodeId),
    /// A state element (index into the latch list); its value is the
    /// latch's current state.
    Latch(usize),
}

/// A state element: current value read through a [`Gate::Latch`] node,
/// next value driven by `next`, reset to `init`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Latch {
    /// The node reading this latch's current state.
    pub node: NodeId,
    /// The node computing the next state (must be set before use).
    pub next: Option<NodeId>,
    /// Initial (reset) value.
    pub init: bool,
}

/// A gate-level netlist with primary inputs, named outputs, and latches.
///
/// Construction is by builder-style methods that return [`NodeId`]s:
///
/// ```
/// use circuit::Netlist;
///
/// let mut n = Netlist::new();
/// let a = n.input();
/// let b = n.input();
/// let s = n.xor2(a, b);
/// n.set_output("sum", s);
/// assert_eq!(n.num_inputs(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    gates: Vec<Gate>,
    inputs: Vec<NodeId>,
    outputs: Vec<(String, NodeId)>,
    latches: Vec<Latch>,
}

impl Netlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Netlist::default()
    }

    fn push(&mut self, gate: Gate) -> NodeId {
        let id = NodeId(u32::try_from(self.gates.len()).expect("netlist fits in u32"));
        self.gates.push(gate);
        id
    }

    /// Adds a primary input.
    pub fn input(&mut self) -> NodeId {
        let idx = self.inputs.len();
        let id = self.push(Gate::Input(idx));
        self.inputs.push(id);
        id
    }

    /// Adds `n` primary inputs (a bus).
    pub fn inputs(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.input()).collect()
    }

    /// Adds a constant node.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.push(Gate::Const(value))
    }

    /// Adds an inverter.
    pub fn not(&mut self, x: NodeId) -> NodeId {
        self.push(Gate::Not(x))
    }

    /// Adds a 2-input AND.
    pub fn and2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::And(a, b))
    }

    /// Adds a 2-input OR.
    pub fn or2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Or(a, b))
    }

    /// Adds a 2-input XOR.
    pub fn xor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Xor(a, b))
    }

    /// AND over any number of nodes (constant-true for the empty list).
    pub fn and_many(&mut self, xs: &[NodeId]) -> NodeId {
        match xs {
            [] => self.constant(true),
            [x] => *x,
            _ => {
                let mut acc = xs[0];
                for &x in &xs[1..] {
                    acc = self.and2(acc, x);
                }
                acc
            }
        }
    }

    /// OR over any number of nodes (constant-false for the empty list).
    pub fn or_many(&mut self, xs: &[NodeId]) -> NodeId {
        match xs {
            [] => self.constant(false),
            [x] => *x,
            _ => {
                let mut acc = xs[0];
                for &x in &xs[1..] {
                    acc = self.or2(acc, x);
                }
                acc
            }
        }
    }

    /// 2-to-1 multiplexer: `sel ? a : b`.
    pub fn mux(&mut self, sel: NodeId, a: NodeId, b: NodeId) -> NodeId {
        let ns = self.not(sel);
        let ta = self.and2(sel, a);
        let tb = self.and2(ns, b);
        self.or2(ta, tb)
    }

    /// NAND, by composition.
    pub fn nand2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let x = self.and2(a, b);
        self.not(x)
    }

    /// NOR, by composition.
    pub fn nor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let x = self.or2(a, b);
        self.not(x)
    }

    /// XNOR (equivalence), by composition.
    pub fn xnor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let x = self.xor2(a, b);
        self.not(x)
    }

    /// Adds a latch with the given reset value; drive it later with
    /// [`Netlist::connect_next`].
    pub fn latch(&mut self, init: bool) -> NodeId {
        let idx = self.latches.len();
        let id = self.push(Gate::Latch(idx));
        self.latches.push(Latch { node: id, next: None, init });
        id
    }

    /// Sets the next-state function of `latch_node`.
    ///
    /// # Panics
    ///
    /// Panics if `latch_node` is not a latch.
    pub fn connect_next(&mut self, latch_node: NodeId, next: NodeId) {
        let Gate::Latch(idx) = self.gates[latch_node.index()] else {
            panic!("{latch_node:?} is not a latch");
        };
        self.latches[idx].next = Some(next);
    }

    /// Registers a named output.
    pub fn set_output(&mut self, name: impl Into<String>, node: NodeId) {
        self.outputs.push((name.into(), node));
    }

    /// The gate driving `node`.
    #[must_use]
    pub fn gate(&self, node: NodeId) -> Gate {
        self.gates[node.index()]
    }

    /// All gates, indexed by node.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Primary inputs, in creation order.
    #[must_use]
    pub fn input_nodes(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Named outputs.
    #[must_use]
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Looks up an output by name.
    #[must_use]
    pub fn output(&self, name: &str) -> Option<NodeId> {
        self.outputs.iter().find(|(n, _)| n == name).map(|&(_, id)| id)
    }

    /// The latches.
    #[must_use]
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of nodes (gates of all kinds).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.gates.len()
    }

    /// Number of latches.
    #[must_use]
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// Returns `true` if the netlist has no latches.
    #[must_use]
    pub fn is_combinational(&self) -> bool {
        self.latches.is_empty()
    }

    /// Instantiates a copy of `other` inside this netlist, connecting
    /// its primary inputs to `input_map`. Latches are copied with their
    /// reset values and next-state functions; `other`'s named outputs
    /// are *not* copied (use the returned map to wire them up).
    ///
    /// Returns, for each node of `other`, the corresponding node here.
    ///
    /// # Panics
    ///
    /// Panics if `input_map` does not cover all of `other`'s inputs, or
    /// if some latch of `other` is not connected.
    pub fn instantiate(&mut self, other: &Netlist, input_map: &[NodeId]) -> Vec<NodeId> {
        assert_eq!(
            input_map.len(),
            other.num_inputs(),
            "input map must cover every input"
        );
        let mut map: Vec<NodeId> = Vec::with_capacity(other.num_nodes());
        for gate in other.gates() {
            let node = match *gate {
                Gate::Input(i) => input_map[i],
                Gate::Const(b) => self.constant(b),
                Gate::Not(x) => self.not(map[x.index()]),
                Gate::And(a, b) => self.and2(map[a.index()], map[b.index()]),
                Gate::Or(a, b) => self.or2(map[a.index()], map[b.index()]),
                Gate::Xor(a, b) => self.xor2(map[a.index()], map[b.index()]),
                Gate::Latch(idx) => self.latch(other.latches[idx].init),
            };
            map.push(node);
        }
        for latch in other.latches() {
            let next = latch.next.expect("latch connected before instantiation");
            self.connect_next(map[latch.node.index()], map[next.index()]);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_creates_distinct_nodes() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        assert_ne!(a, b);
        let g = n.and2(a, b);
        assert_eq!(n.gate(g), Gate::And(a, b));
        assert_eq!(n.num_nodes(), 3);
        assert_eq!(n.num_inputs(), 2);
        assert!(n.is_combinational());
    }

    #[test]
    fn bus_inputs() {
        let mut n = Netlist::new();
        let bus = n.inputs(4);
        assert_eq!(bus.len(), 4);
        assert_eq!(n.num_inputs(), 4);
        assert_eq!(n.input_nodes(), bus.as_slice());
    }

    #[test]
    fn outputs_are_named() {
        let mut n = Netlist::new();
        let a = n.input();
        n.set_output("y", a);
        assert_eq!(n.output("y"), Some(a));
        assert_eq!(n.output("z"), None);
        assert_eq!(n.outputs().len(), 1);
    }

    #[test]
    fn and_or_many_edge_cases() {
        let mut n = Netlist::new();
        let t = n.and_many(&[]);
        assert_eq!(n.gate(t), Gate::Const(true));
        let f = n.or_many(&[]);
        assert_eq!(n.gate(f), Gate::Const(false));
        let a = n.input();
        assert_eq!(n.and_many(&[a]), a);
        assert_eq!(n.or_many(&[a]), a);
        let b = n.input();
        let c = n.input();
        let all = n.and_many(&[a, b, c]);
        assert!(matches!(n.gate(all), Gate::And(_, _)));
    }

    #[test]
    fn latch_wiring() {
        let mut n = Netlist::new();
        let q = n.latch(true);
        let nq = n.not(q);
        n.connect_next(q, nq); // toggle flip-flop
        assert_eq!(n.num_latches(), 1);
        assert!(!n.is_combinational());
        let latch = n.latches()[0];
        assert_eq!(latch.node, q);
        assert_eq!(latch.next, Some(nq));
        assert!(latch.init);
    }

    #[test]
    #[should_panic(expected = "is not a latch")]
    fn connect_next_rejects_non_latch() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        n.connect_next(a, b);
    }
}
