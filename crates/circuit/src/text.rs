//! A line-oriented text format for netlists, in the spirit of AIGER's
//! ASCII format: one node per line, in topological (creation) order,
//! followed by latch connections and named outputs.
//!
//! ```text
//! netlist 4
//! input
//! input
//! xor 0 1
//! latch 1
//! next 3 2
//! output sum 2
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

use crate::netlist::{Gate, Netlist, NodeId};

/// An error produced while parsing the netlist text format.
#[derive(Debug)]
pub enum ParseNetlistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed or unknown line.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A node reference to a not-yet-defined node.
    ForwardReference {
        /// 1-based line number.
        line: usize,
    },
    /// Missing `netlist` header.
    MissingHeader,
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetlistError::Io(e) => write!(f, "i/o error: {e}"),
            ParseNetlistError::BadLine { line, text } => {
                write!(f, "line {line}: malformed line {text:?}")
            }
            ParseNetlistError::ForwardReference { line } => {
                write!(f, "line {line}: reference to a later node")
            }
            ParseNetlistError::MissingHeader => write!(f, "missing `netlist` header"),
        }
    }
}

impl Error for ParseNetlistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseNetlistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseNetlistError {
    fn from(e: io::Error) -> Self {
        ParseNetlistError::Io(e)
    }
}

/// Writes a netlist in the text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_netlist<W: Write>(mut writer: W, netlist: &Netlist) -> io::Result<()> {
    writeln!(writer, "netlist {}", netlist.num_nodes())?;
    for gate in netlist.gates() {
        match *gate {
            Gate::Input(_) => writeln!(writer, "input")?,
            Gate::Const(b) => writeln!(writer, "const {}", u8::from(b))?,
            Gate::Not(x) => writeln!(writer, "not {}", x.index())?,
            Gate::And(a, b) => writeln!(writer, "and {} {}", a.index(), b.index())?,
            Gate::Or(a, b) => writeln!(writer, "or {} {}", a.index(), b.index())?,
            Gate::Xor(a, b) => writeln!(writer, "xor {} {}", a.index(), b.index())?,
            Gate::Latch(idx) => writeln!(
                writer,
                "latch {}",
                u8::from(netlist.latches()[idx].init)
            )?,
        }
    }
    for latch in netlist.latches() {
        if let Some(next) = latch.next {
            writeln!(writer, "next {} {}", latch.node.index(), next.index())?;
        }
    }
    for (name, node) in netlist.outputs() {
        writeln!(writer, "output {name} {}", node.index())?;
    }
    Ok(())
}

/// Renders a netlist to a string in the text format.
#[must_use]
pub fn to_netlist_string(netlist: &Netlist) -> String {
    let mut buf = Vec::new();
    write_netlist(&mut buf, netlist).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("netlist text is ASCII")
}

/// Parses a netlist from the text format.
///
/// # Errors
///
/// Returns [`ParseNetlistError`] on I/O failure or malformed input.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "netlist 3\ninput\ninput\nand 0 1\noutput y 2\n";
/// let n = circuit::parse_netlist(text.as_bytes())?;
/// assert_eq!(n.num_inputs(), 2);
/// assert!(n.output("y").is_some());
/// # Ok(())
/// # }
/// ```
pub fn parse_netlist<R: BufRead>(reader: R) -> Result<Netlist, ParseNetlistError> {
    let mut netlist = Netlist::new();
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut seen_header = false;

    let resolve = |nodes: &[NodeId], token: &str, line: usize| -> Result<NodeId, ParseNetlistError> {
        let idx: usize = token.parse().map_err(|_| ParseNetlistError::BadLine {
            line,
            text: token.to_string(),
        })?;
        nodes
            .get(idx)
            .copied()
            .ok_or(ParseNetlistError::ForwardReference { line })
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let bad = || ParseNetlistError::BadLine { line: lineno, text: line.clone() };
        let mut tokens = trimmed.split_whitespace();
        let keyword = tokens.next().ok_or_else(bad)?;
        let args: Vec<&str> = tokens.collect();
        if !seen_header {
            if keyword != "netlist" || args.len() != 1 {
                return Err(ParseNetlistError::MissingHeader);
            }
            seen_header = true;
            continue;
        }
        match (keyword, args.as_slice()) {
            ("input", []) => nodes.push(netlist.input()),
            ("const", [v]) => match *v {
                "0" => nodes.push(netlist.constant(false)),
                "1" => nodes.push(netlist.constant(true)),
                _ => return Err(bad()),
            },
            ("not", [x]) => {
                let x = resolve(&nodes, x, lineno)?;
                nodes.push(netlist.not(x));
            }
            ("and" | "or" | "xor", [a, b]) => {
                let a = resolve(&nodes, a, lineno)?;
                let b = resolve(&nodes, b, lineno)?;
                nodes.push(match keyword {
                    "and" => netlist.and2(a, b),
                    "or" => netlist.or2(a, b),
                    _ => netlist.xor2(a, b),
                });
            }
            ("latch", [v]) => match *v {
                "0" => nodes.push(netlist.latch(false)),
                "1" => nodes.push(netlist.latch(true)),
                _ => return Err(bad()),
            },
            ("next", [l, n]) => {
                let l = resolve(&nodes, l, lineno)?;
                let n = resolve(&nodes, n, lineno)?;
                if !matches!(netlist.gate(l), Gate::Latch(_)) {
                    return Err(bad());
                }
                netlist.connect_next(l, n);
            }
            ("output", [name, n]) => {
                let n = resolve(&nodes, n, lineno)?;
                netlist.set_output(*name, n);
            }
            _ => return Err(bad()),
        }
    }
    if !seen_header {
        return Err(ParseNetlistError::MissingHeader);
    }
    Ok(netlist)
}

/// Parses a netlist from a string slice.
///
/// # Errors
///
/// See [`parse_netlist`].
pub fn parse_netlist_str(text: &str) -> Result<Netlist, ParseNetlistError> {
    parse_netlist(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{lfsr, ripple_carry_adder};
    use crate::sim::Simulator;

    fn roundtrip(netlist: &Netlist) -> Netlist {
        let text = to_netlist_string(netlist);
        parse_netlist_str(&text).expect("own output parses")
    }

    #[test]
    fn adder_roundtrips_and_simulates_identically() {
        let mut n = Netlist::new();
        let a = n.inputs(3);
        let b = n.inputs(3);
        let (sum, cout) = ripple_carry_adder(&mut n, &a, &b);
        for (i, s) in sum.iter().enumerate() {
            n.set_output(format!("s{i}"), *s);
        }
        n.set_output("cout", cout);

        let m = roundtrip(&n);
        assert_eq!(m.num_nodes(), n.num_nodes());
        assert_eq!(m.num_inputs(), n.num_inputs());
        assert_eq!(m.outputs().len(), n.outputs().len());

        let sim_n = Simulator::new(&n);
        let sim_m = Simulator::new(&m);
        for bits in 0u32..64 {
            let inputs: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            let vn = sim_n.evaluate(&inputs);
            let vm = sim_m.evaluate(&inputs);
            for (name, node) in n.outputs() {
                let mnode = m.output(name).expect("same outputs");
                assert_eq!(vn.node(*node), vm.node(mnode), "{name} at {bits:b}");
            }
        }
    }

    #[test]
    fn sequential_roundtrip_preserves_latches() {
        let mut n = Netlist::new();
        let state = lfsr(&mut n, 5, &[4, 2]);
        n.set_output("b0", state[0]);
        let m = roundtrip(&n);
        assert_eq!(m.num_latches(), 5);
        let mut sim_n = Simulator::new(&n);
        let mut sim_m = Simulator::new(&m);
        for step in 0..20 {
            let vn = sim_n.step(&[]);
            let vm = sim_m.step(&[]);
            let node_n = n.output("b0").expect("named");
            let node_m = m.output("b0").expect("named");
            assert_eq!(vn.node(node_n), vm.node(node_m), "step {step}");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\nnetlist 2\n\ninput\n# mid comment\nnot 0\n";
        let n = parse_netlist_str(text).expect("parse");
        assert_eq!(n.num_nodes(), 2);
    }

    #[test]
    fn missing_header_rejected() {
        assert!(matches!(
            parse_netlist_str("input\n").unwrap_err(),
            ParseNetlistError::MissingHeader
        ));
        assert!(matches!(
            parse_netlist_str("").unwrap_err(),
            ParseNetlistError::MissingHeader
        ));
    }

    #[test]
    fn forward_reference_rejected() {
        let err = parse_netlist_str("netlist 2\nnot 1\ninput\n").unwrap_err();
        assert!(matches!(err, ParseNetlistError::ForwardReference { line: 2 }));
    }

    #[test]
    fn malformed_lines_rejected_with_position() {
        for (text, expect) in [
            ("netlist 1\nfrobnicate\n", 2),
            ("netlist 1\nconst 2\n", 2),
            ("netlist 2\ninput\nand 0\n", 3),
            ("netlist 2\ninput\nnext 0 0\n", 3), // next on a non-latch
        ] {
            let err = parse_netlist_str(text).unwrap_err();
            assert!(
                matches!(err, ParseNetlistError::BadLine { line, .. } if line == expect),
                "{text:?} gave {err}"
            );
        }
    }

    #[test]
    fn error_display_mentions_line() {
        let err = parse_netlist_str("netlist 1\nbogus\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }
}
