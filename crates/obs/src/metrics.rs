//! A process-global metrics registry: counters, gauges, fixed-bucket
//! histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Copy` wrappers
//! around `&'static` atomics, so recording is lock-free and safe from
//! `verify_all_parallel`'s worker threads. Look up a handle once (a
//! registry mutex is taken only on registration/lookup), cache it in a
//! `OnceLock`, and record away.
//!
//! A separate [`recording`] flag lets instrumented hot loops skip even
//! the atomic traffic unless the user asked for metrics (`--metrics` /
//! `--json`). Cheap call-site pattern:
//!
//! ```
//! use std::sync::OnceLock;
//! static PROPS: OnceLock<obs::metrics::Counter> = OnceLock::new();
//! if obs::metrics::recording() {
//!     PROPS.get_or_init(|| obs::metrics::counter("bcp.propagations")).add(17);
//! }
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Number of buckets in every [`Histogram`]: one per power of two of
/// the recorded value (see [`bucket_index`]).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Whether instrumented code should record metrics. Off by default.
static RECORDING: AtomicBool = AtomicBool::new(false);

/// Turns metric recording on or off process-wide.
///
/// `Relaxed` ordering is sound here: the flag is a pure sampling gate.
/// No reader takes a data dependency on memory written before the
/// store — the metric cells are themselves atomic, and registration is
/// serialised by the registry mutex, which provides its own
/// synchronisation. The only observable effect of the relaxed pair is
/// that a thread may record (or skip) a few samples around a toggle,
/// which changes *which* samples are captured, never the integrity of
/// the registry. Upgrading to `SeqCst` would buy nothing and put a
/// fence in every instrumented hot-path check.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether metric recording is on (one relaxed load).
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// A monotonically increasing `u64` metric.
#[derive(Clone, Copy)]
pub struct Counter {
    cell: &'static AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed, settable metric.
#[derive(Clone, Copy)]
pub struct Gauge {
    cell: &'static AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(self, value: i64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Min tracked as `u64::MAX - value` so it fits monotone `fetch_max`.
    inv_min: AtomicU64,
}

impl HistogramCells {
    fn new() -> HistogramCells {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            inv_min: AtomicU64::new(0),
        }
    }
}

/// The power-of-two bucket a value lands in: 0 for values 0 and 1,
/// then one bucket per doubling, saturating at the last bucket.
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).saturating_sub(1).min(HISTOGRAM_BUCKETS - 1)
}

/// The inclusive upper bound of values counted by `bucket` (the last
/// bucket is unbounded and reports `u64::MAX`).
#[must_use]
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (2u64 << bucket) - 1
    }
}

/// A fixed-bucket (power-of-two) histogram of `u64` samples.
#[derive(Clone, Copy)]
pub struct Histogram {
    cells: &'static HistogramCells,
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(self, value: u64) {
        self.cells.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(value, Ordering::Relaxed);
        self.cells.max.fetch_max(value, Ordering::Relaxed);
        self.cells.inv_min.fetch_max(u64::MAX - value, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot (fields load independently, so
    /// totals may lag individual buckets under concurrent writes).
    #[must_use]
    pub fn snapshot(self) -> HistogramSnapshot {
        let count = self.cells.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.cells.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                u64::MAX - self.cells.inv_min.load(Ordering::Relaxed)
            },
            max: self.cells.max.load(Ordering::Relaxed),
            buckets: self
                .cells
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, cell)| {
                    let n = cell.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_upper_bound(i), n))
                })
                .collect(),
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// `(inclusive_upper_bound, sample_count)` for each non-empty
    /// bucket, in increasing bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate from the log-scale buckets.
    ///
    /// Returns the inclusive upper bound of the bucket containing the
    /// `q`-th sample, clamped to the exactly-tracked `[min, max]`
    /// range. Because buckets double, the estimate never understates
    /// the true quantile and overstates it by less than 2× — the right
    /// bias for latency reporting (pessimistic, never flattering).
    /// `q` is clamped to `[0, 1]`; an empty histogram reports 0.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate (see [`HistogramSnapshot::quantile`]).
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate (see [`HistogramSnapshot::quantile`]).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

enum Slot {
    Counter(&'static AtomicU64),
    Gauge(&'static AtomicI64),
    Histogram(&'static HistogramCells),
}

fn registry() -> MutexGuard<'static, HashMap<String, Slot>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Slot>>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        // the map is never left mid-update, so a poisoned lock is usable
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The counter registered under `name`, registering it on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Counter {
    let found = {
        let mut reg = registry();
        let slot = reg.entry(String::from(name)).or_insert_with(|| {
            Slot::Counter(Box::leak(Box::new(AtomicU64::new(0))))
        });
        match slot {
            Slot::Counter(cell) => Some(*cell),
            _ => None,
        }
    };
    match found {
        Some(cell) => Counter { cell },
        None => panic!("metric `{name}` already registered as a non-counter"),
    }
}

/// The gauge registered under `name`, registering it on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> Gauge {
    let found = {
        let mut reg = registry();
        let slot = reg.entry(String::from(name)).or_insert_with(|| {
            Slot::Gauge(Box::leak(Box::new(AtomicI64::new(0))))
        });
        match slot {
            Slot::Gauge(cell) => Some(*cell),
            _ => None,
        }
    };
    match found {
        Some(cell) => Gauge { cell },
        None => panic!("metric `{name}` already registered as a non-gauge"),
    }
}

/// The histogram registered under `name`, registering it on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> Histogram {
    let found = {
        let mut reg = registry();
        let slot = reg.entry(String::from(name)).or_insert_with(|| {
            Slot::Histogram(Box::leak(Box::new(HistogramCells::new())))
        });
        match slot {
            Slot::Histogram(cells) => Some(*cells),
            _ => None,
        }
    };
    match found {
        Some(cells) => Histogram { cells },
        None => panic!("metric `{name}` already registered as a non-histogram"),
    }
}

/// Point-in-time view of the whole registry, each section sorted by
/// metric name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The counter value recorded under `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram snapshot recorded under `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

/// Snapshots every registered metric.
#[must_use]
pub fn registry_snapshot() -> MetricsSnapshot {
    let reg = registry();
    let mut snap = MetricsSnapshot::default();
    for (name, slot) in reg.iter() {
        match slot {
            Slot::Counter(cell) => {
                snap.counters.push((name.clone(), cell.load(Ordering::Relaxed)));
            }
            Slot::Gauge(cell) => {
                snap.gauges.push((name.clone(), cell.load(Ordering::Relaxed)));
            }
            Slot::Histogram(cells) => {
                snap.histograms.push((name.clone(), Histogram { cells }.snapshot()));
            }
        }
    }
    snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and tests share one process, so
    // each test uses metric names unique to itself.

    #[test]
    fn counter_accumulates() {
        let c = counter("test.counter_accumulates");
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        // same name, same cell
        assert_eq!(counter("test.counter_accumulates").get(), 4);
    }

    #[test]
    fn gauge_sets_and_moves() {
        let g = gauge("test.gauge");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = histogram("test.histogram");
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1010);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1000);
        // 0,1 → bound 1; 2,3 → bound 3; 4 → bound 7; 1000 → bound 1023
        assert_eq!(snap.buckets, vec![(1, 2), (3, 2), (7, 1), (1023, 1)]);
        assert!((snap.mean() - 1010.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_index_is_monotone_and_saturates() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let mut prev = 0;
        for shift in 0..64 {
            let idx = bucket_index(1u64 << shift);
            assert!(idx >= prev);
            prev = idx;
        }
    }

    #[test]
    fn bucket_edges_are_exact() {
        // bucket 0 holds exactly {0, 1}
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_upper_bound(0), 1);
        // each later bucket holds one doubling: (2^k, 2^(k+1)]-ish —
        // precisely [2^k, 2^(k+1) - 1]
        for k in 1..(HISTOGRAM_BUCKETS - 1) {
            let lo = 1u64 << k;
            let hi = (1u64 << (k + 1)) - 1;
            assert_eq!(bucket_index(lo), k, "lower edge of bucket {k}");
            assert_eq!(bucket_index(hi), k, "upper edge of bucket {k}");
            assert_eq!(bucket_upper_bound(k), hi);
            assert_eq!(bucket_index(hi + 1), (k + 1).min(HISTOGRAM_BUCKETS - 1));
        }
        // the last bucket is the unbounded catch-all
        assert_eq!(bucket_index(1u64 << 31), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX - 1), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS + 7), u64::MAX);
    }

    #[test]
    fn bucket_functions_are_mutually_consistent() {
        // every value maps into a bucket whose bound covers it, and
        // every bucket bound maps back to its own bucket
        for shift in 0..64 {
            for v in [1u64 << shift, (1u64 << shift).wrapping_sub(1), u64::MAX >> shift] {
                let idx = bucket_index(v);
                assert!(v <= bucket_upper_bound(idx), "value {v} above its bound");
                if idx > 0 {
                    assert!(
                        v > bucket_upper_bound(idx - 1),
                        "value {v} also fits bucket {}",
                        idx - 1
                    );
                }
            }
        }
        for bucket in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(bucket)), bucket);
        }
    }

    #[test]
    fn quantiles_estimate_within_bucket_resolution() {
        let h = histogram("test.quantiles");
        // 100 samples: 50× 10, 40× 100, 9× 1000, 1× 60000
        for _ in 0..50 {
            h.record(10);
        }
        for _ in 0..40 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(1000);
        }
        h.record(60_000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        // nearest-rank on bucket bounds: upper bound of the bucket the
        // rank lands in, so within 2× above the true value
        let p50 = snap.p50();
        assert!((10..=15).contains(&p50), "p50 {p50}");
        let p90 = snap.quantile(0.90);
        assert!((100..=127).contains(&p90), "p90 {p90}");
        let p99 = snap.p99();
        assert!((1000..=1023).contains(&p99), "p99 {p99}");
        // extremes stay within the exactly-tracked [min, max] range
        let q0 = snap.quantile(0.0);
        assert!((10..=15).contains(&q0), "q0 {q0} near min");
        assert_eq!(snap.quantile(1.0), 60_000, "q1 clamps to max");
    }

    #[test]
    fn quantile_on_empty_histogram_is_zero() {
        let h = histogram("test.quantiles_empty");
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.p99(), 0);
    }

    #[test]
    fn quantile_single_sample_is_that_sample() {
        let h = histogram("test.quantiles_single");
        h.record(777);
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), 777);
        }
    }

    #[test]
    fn kind_mismatch_panics() {
        let _ = counter("test.kind_mismatch");
        let err = std::panic::catch_unwind(|| gauge("test.kind_mismatch"));
        assert!(err.is_err());
        // the registry stays usable afterwards
        counter("test.kind_mismatch.after").inc();
    }

    #[test]
    fn snapshot_contains_registered_names() {
        counter("test.snapshot.counter").add(5);
        gauge("test.snapshot.gauge").set(-2);
        histogram("test.snapshot.histogram").record(9);
        let snap = registry_snapshot();
        assert_eq!(snap.counter("test.snapshot.counter"), Some(5));
        assert!(snap.gauges.iter().any(|(n, v)| n == "test.snapshot.gauge" && *v == -2));
        let h = snap.histogram("test.snapshot.histogram").expect("histogram present");
        assert_eq!((h.count, h.sum), (1, 9));
    }

    #[test]
    fn recording_flag_toggles() {
        set_recording(true);
        assert!(recording());
        set_recording(false);
    }
}
