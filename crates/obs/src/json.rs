//! A hand-rolled JSON document model, writer, and strict parser.
//!
//! No serde: the workspace builds offline with zero external
//! dependencies. The writer is escaping-correct (quotes, backslashes,
//! all control characters via `\u00XX` or the short forms) and maps
//! non-finite floats to `null`, since JSON has no NaN/Infinity. Object
//! keys keep insertion order so reports are stable and diffable.

use std::fmt;

/// A JSON value. Integers are kept exact in a dedicated variant
/// instead of being forced through `f64` (counters can exceed 2^53).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer written without a decimal point.
    Int(i64),
    /// A finite float; non-finite values serialise as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be populated with [`Json::push`].
    #[must_use]
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// An object from `(key, value)` pairs, preserving order.
    pub fn object_from<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Appends a `(key, value)` pair to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not `Json::Object`.
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<Json>) {
        match self {
            Json::Object(pairs) => pairs.push((key.into(), value.into())),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// An array from values.
    pub fn array(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(values.into_iter().collect())
    }

    /// The value under `key` if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is `Json::Int`.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is `Json::Str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is `Json::Array`.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises compactly (no whitespace).
    #[must_use]
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises with 2-space indentation and a trailing newline,
    /// suitable for writing to a report file.
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                use std::fmt::Write as _;
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, depth| {
                    items[i].write(out, indent, depth);
                });
            }
            Json::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, depth| {
                    write_escaped(&pairs[i].0, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, depth);
                });
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        // counters past i64::MAX lose exactness; JSON itself has no
        // integer width limit, but the model stores i64
        i64::try_from(n).map(Json::Int).unwrap_or(Json::Float(n as f64))
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(i64::from(n))
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::from(n as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(String::from(s))
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn write_f64(x: f64, out: &mut String) {
    use std::fmt::Write as _;
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            // keep a marker that this is a float, not an int
            let _ = write!(out, "{x:.1}");
        } else {
            let _ = write!(out, "{x}");
        }
    } else {
        // JSON has no NaN / Infinity
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * width {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
    out.push(close);
}

/// A parse failure with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (rejecting trailing garbage).
///
/// Strictness matches RFC 8259: no comments, no trailing commas, no
/// unquoted keys. `\uXXXX` escapes are decoded, including surrogate
/// pairs.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // consume one full UTF-8 scalar (input is &str, so
                    // boundaries are guaranteed valid)
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let s = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, ParseError> {
        let b = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{08}',
            b'f' => '\u{0C}',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // high surrogate: require a following \uXXXX low half
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let code =
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code)
                            .ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            other => return Err(self.err(format!("invalid escape `\\{}`", other as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // integer part: 0 | [1-9][0-9]*
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if is_float {
            text.parse().map(Json::Float).map_err(|e| self.err(e.to_string()))
        } else {
            // fall back to float on i64 overflow (JSON allows bignums)
            match text.parse::<i64>() {
                Ok(n) => Ok(Json::Int(n)),
                Err(_) => text.parse().map(Json::Float).map_err(|e| self.err(e.to_string())),
            }
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_specials() {
        let j = Json::from("a\"b\\c\nd\te\r\u{08}\u{0C}\u{01}\u{1F}");
        assert_eq!(
            j.to_compact_string(),
            r#""a\"b\\c\nd\te\r\b\f\u0001\u001f""#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_compact_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_compact_string(), "null");
        assert_eq!(Json::Float(f64::NEG_INFINITY).to_compact_string(), "null");
        assert_eq!(Json::Float(1.5).to_compact_string(), "1.5");
        assert_eq!(Json::Float(2.0).to_compact_string(), "2.0");
    }

    #[test]
    fn ints_stay_exact() {
        assert_eq!(Json::Int(i64::MAX).to_compact_string(), "9223372036854775807");
        assert_eq!(Json::Int(i64::MIN).to_compact_string(), "-9223372036854775808");
        assert_eq!(Json::from(42u64).to_compact_string(), "42");
    }

    #[test]
    fn object_order_is_preserved() {
        let j = Json::object_from([("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(j.to_compact_string(), r#"{"z":1,"a":2}"#);
        assert_eq!(j.get("a"), Some(&Json::Int(2)));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let j = Json::object_from([
            ("list", Json::array([Json::Int(1), Json::Null])),
            ("empty", Json::Array(vec![])),
            ("nested", Json::object_from([("k", Json::Bool(true))])),
        ]);
        let pretty = j.to_pretty_string();
        assert!(pretty.contains("\n  \"list\": [\n    1,\n    null\n  ],"));
        assert!(pretty.contains("\"empty\": []"));
        assert_eq!(parse(&pretty).expect("reparse"), j);
    }

    #[test]
    fn parser_roundtrips_unicode_and_escapes() {
        let original = Json::from("päivä \u{1F600} \"q\" \\ \u{0}");
        let parsed = parse(&original.to_compact_string()).expect("parse");
        assert_eq!(parsed, original);
        // surrogate-pair escape decodes to the astral char
        assert_eq!(
            parse(r#""\ud83d\ude00""#).expect("parse"),
            Json::from("\u{1F600}")
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "{'a':1}", "[1 2]", "01", "1.", "1e",
            "\"\\x\"", "\"\\ud800\"", "tru", "nullx", "[1]]",
            "\"raw\u{01}control\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_accepts_numbers() {
        assert_eq!(parse("-0").expect("p"), Json::Int(0));
        assert_eq!(parse("123").expect("p"), Json::Int(123));
        assert_eq!(parse("-4.5e2").expect("p"), Json::Float(-450.0));
        assert_eq!(parse("1E+3").expect("p"), Json::Float(1000.0));
        // i64 overflow falls back to float
        assert_eq!(
            parse("99999999999999999999").expect("p"),
            Json::Float(1e20)
        );
    }
}
