//! Named timing spans with a pluggable subscriber.
//!
//! The fast path is engineered around the *disabled* case: until a
//! [`Subscriber`] is installed, [`Span::enter`] performs one relaxed
//! atomic load, takes no timestamp, and returns an inert guard. The
//! compiler can see through the `Option<Instant>` and the drop becomes
//! a branch on a dead flag — instrumented hot loops pay essentially
//! nothing (verified by the `bcp_throughput` bench; numbers in the
//! README).
//!
//! With a subscriber installed, a span measures wall time from `enter`
//! to `finish` (or drop) and reports `(name, elapsed)` to the
//! subscriber. The bundled [`CollectingSubscriber`] aggregates those
//! reports into per-name call counts and total/min/max durations.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Receives span lifecycle notifications and point events.
///
/// Implementations must be cheap and thread-safe: spans fire from
/// solver and verifier worker threads concurrently.
pub trait Subscriber: Send + Sync {
    /// A span named `name` just started. Default: ignore.
    fn span_enter(&self, name: &'static str) {
        let _ = name;
    }

    /// A span named `name` just finished after `elapsed`.
    fn span_close(&self, name: &'static str, elapsed: Duration);

    /// A point event carrying a value (e.g. "restart at conflict N").
    fn event(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SUBSCRIBER: OnceLock<&'static (dyn Subscriber + 'static)> = OnceLock::new();
static COLLECTOR: OnceLock<&'static CollectingSubscriber> = OnceLock::new();

/// Whether a subscriber is installed (one relaxed load).
#[inline]
pub fn spans_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs the process-wide subscriber. Returns `false` (leaving the
/// existing subscriber in place) if one was already installed.
///
/// The subscriber is leaked: it lives for the rest of the process,
/// which is what a process-wide telemetry sink wants anyway.
pub fn install_subscriber(subscriber: Box<dyn Subscriber>) -> bool {
    let leaked: &'static dyn Subscriber = Box::leak(subscriber);
    let installed = SUBSCRIBER.set(leaked).is_ok();
    if installed {
        // release so threads seeing ENABLED also see the OnceLock write
        ENABLED.store(true, Ordering::Release);
    }
    installed
}

#[inline]
fn subscriber() -> Option<&'static dyn Subscriber> {
    if ENABLED.load(Ordering::Acquire) {
        SUBSCRIBER.get().copied()
    } else {
        None
    }
}

/// Emits a point event to the installed subscriber, if any.
#[inline]
pub fn event(name: &'static str, value: u64) {
    if let Some(sub) = subscriber() {
        sub.event(name, value);
    }
}

/// A RAII timing guard created by [`span!`](crate::span!) or
/// [`Span::enter`]. Finishes (and reports) on drop; call
/// [`finish`](Span::finish) to end it early and by name.
#[must_use = "a span measures until dropped; binding it to `_` ends it immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Starts a span. When no subscriber is installed this takes no
    /// timestamp and the guard is inert.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        match subscriber() {
            Some(sub) => {
                sub.span_enter(name);
                Span { name, start: Some(Instant::now()) }
            }
            None => Span { name, start: None },
        }
    }

    /// Ends the span now, reporting its elapsed time.
    #[inline]
    pub fn finish(self) {
        // drop does the reporting
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            if let Some(sub) = subscriber() {
                sub.span_close(self.name, start.elapsed());
            }
        }
    }
}

/// Starts a [`Span`] with the given static name:
/// `let span = span!("bcp"); ...; span.finish();`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::Span::enter($name)
    };
}

/// Aggregate of all closed spans sharing one name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSummary {
    /// Number of times the span closed.
    pub count: u64,
    /// Sum of elapsed times.
    pub total: Duration,
    /// Shortest single run.
    pub min: Duration,
    /// Longest single run.
    pub max: Duration,
}

impl SpanSummary {
    /// Mean elapsed time per close (zero when the span never closed).
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.count).unwrap_or(u32::MAX)
        }
    }

    fn absorb(&mut self, elapsed: Duration) {
        self.count += 1;
        self.total += elapsed;
        self.min = self.min.min(elapsed);
        self.max = self.max.max(elapsed);
    }

    fn new(elapsed: Duration) -> SpanSummary {
        SpanSummary { count: 1, total: elapsed, min: elapsed, max: elapsed }
    }
}

/// A [`Subscriber`] that aggregates span timings per name.
#[derive(Default)]
pub struct CollectingSubscriber {
    spans: Mutex<HashMap<&'static str, SpanSummary>>,
    events: Mutex<HashMap<&'static str, (u64, u64)>>,
}

impl CollectingSubscriber {
    /// Installs a fresh collecting subscriber process-wide and returns
    /// it. If a collecting subscriber was already installed, returns
    /// that one instead; if a *different* subscriber type is installed,
    /// returns `None`.
    pub fn install() -> Option<&'static CollectingSubscriber> {
        if let Some(existing) = COLLECTOR.get() {
            return Some(existing);
        }
        let leaked: &'static CollectingSubscriber =
            Box::leak(Box::new(CollectingSubscriber::default()));
        if SUBSCRIBER.set(leaked).is_ok() {
            let _ = COLLECTOR.set(leaked);
            ENABLED.store(true, Ordering::Release);
            Some(leaked)
        } else {
            COLLECTOR.get().copied()
        }
    }

    /// Snapshot of per-name aggregates, sorted by name.
    pub fn collected(&self) -> Vec<(String, SpanSummary)> {
        let spans = self.spans.lock().expect("span lock");
        let mut out: Vec<(String, SpanSummary)> =
            spans.iter().map(|(name, agg)| (String::from(*name), agg.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Snapshot of per-name event `(count, value_sum)` pairs, sorted.
    pub fn collected_events(&self) -> Vec<(String, u64, u64)> {
        let events = self.events.lock().expect("event lock");
        let mut out: Vec<(String, u64, u64)> = events
            .iter()
            .map(|(name, (count, sum))| (String::from(*name), *count, *sum))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Like [`collected`](Self::collected), but also clears the store.
    pub fn drain(&self) -> Vec<(String, SpanSummary)> {
        let mut spans = self.spans.lock().expect("span lock");
        let mut out: Vec<(String, SpanSummary)> =
            spans.drain().map(|(name, agg)| (String::from(name), agg)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl Subscriber for CollectingSubscriber {
    fn span_close(&self, name: &'static str, elapsed: Duration) {
        let mut spans = self.spans.lock().expect("span lock");
        spans
            .entry(name)
            .and_modify(|agg| agg.absorb(elapsed))
            .or_insert_with(|| SpanSummary::new(elapsed));
    }

    fn event(&self, name: &'static str, value: u64) {
        let mut events = self.events.lock().expect("event lock");
        let entry = events.entry(name).or_insert((0, 0));
        entry.0 += 1;
        entry.1 = entry.1.wrapping_add(value);
    }
}

/// Span aggregates from the installed [`CollectingSubscriber`], sorted
/// by name; empty when none is installed.
pub fn take_collected() -> Vec<(String, SpanSummary)> {
    COLLECTOR.get().map(|c| c.collected()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the subscriber slot is process-global and tests share one
    // process, so every test here funnels through `collector()` and
    // asserts only on span names unique to itself.
    fn collector() -> &'static CollectingSubscriber {
        CollectingSubscriber::install().expect("collector installed")
    }

    fn summary_for(name: &str) -> Option<SpanSummary> {
        collector()
            .collected()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    #[test]
    fn span_aggregates_count_and_total() {
        let _ = collector();
        for _ in 0..5 {
            let span = Span::enter("test.span_aggregates");
            std::hint::black_box(12u64 * 13);
            span.finish();
        }
        let agg = summary_for("test.span_aggregates").expect("aggregated");
        assert_eq!(agg.count, 5);
        assert!(agg.total >= agg.max);
        assert!(agg.min <= agg.max);
    }

    #[test]
    fn span_macro_and_drop_report() {
        let _ = collector();
        {
            let _span = crate::span!("test.span_macro");
        }
        assert_eq!(summary_for("test.span_macro").expect("present").count, 1);
    }

    #[test]
    fn events_count_and_sum() {
        let _ = collector();
        event("test.events", 7);
        event("test.events", 8);
        let events = collector().collected_events();
        let (_, count, sum) = events
            .iter()
            .find(|(n, _, _)| n == "test.events")
            .expect("event recorded");
        assert_eq!((*count, *sum), (2, 15));
    }

    #[test]
    fn spans_from_many_threads_merge() {
        let _ = collector();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        let span = Span::enter("test.threads");
                        span.finish();
                    }
                });
            }
        });
        assert_eq!(summary_for("test.threads").expect("present").count, 800);
    }
}
