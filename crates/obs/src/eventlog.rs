//! A buffered JSONL (one JSON document per line) event-log writer.
//!
//! Structured access logs — the daemon's job-lifecycle trail, long-run
//! progress events — want an append-only, machine-readable format that
//! survives process crashes line-by-line. JSONL is that format: each
//! line is a complete [`Json`] document, so a truncated final line (a
//! crash mid-write) costs exactly one event, and `grep`/`jq`-style
//! tooling works without a framing parser.
//!
//! [`EventLog`] serialises whole lines under one mutex, so events from
//! concurrent threads interleave at line granularity, never mid-line.
//! Writes are buffered; call [`EventLog::flush`] at quiescence points
//! (drain, shutdown) — dropping the log also flushes, even when a
//! panicking thread poisoned the mutex, and a process-wide panic hook
//! best-effort-flushes every live log before the unwind proceeds (so
//! the tail of the trail survives a crash, which is exactly when it is
//! most needed).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock, TryLockError, Weak};

use crate::json::Json;

type Sink = Mutex<BufWriter<Box<dyn Write + Send>>>;

/// Every live log's sink, weakly held so drops are not delayed. The
/// first registration installs a panic hook (chaining the previous
/// one) that flushes whatever is still alive.
static LIVE_LOGS: OnceLock<Mutex<Vec<Weak<Sink>>>> = OnceLock::new();

fn register(sink: &Arc<Sink>) {
    let registry = LIVE_LOGS.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            flush_all_live();
            previous(info);
        }));
        Mutex::new(Vec::new())
    });
    let mut live = registry.lock().unwrap_or_else(|e| e.into_inner());
    live.retain(|weak| weak.strong_count() > 0);
    live.push(Arc::downgrade(sink));
}

/// Flushes every live log without blocking: a log whose mutex is held
/// by another thread is skipped (its lines flush on drop), and one
/// poisoned by the panicking thread itself is flushed through the
/// poison — the buffered lines were complete before the panic.
fn flush_all_live() {
    let Some(registry) = LIVE_LOGS.get() else { return };
    let live = registry.lock().unwrap_or_else(|e| e.into_inner());
    for weak in live.iter() {
        let Some(sink) = weak.upgrade() else { continue };
        match sink.try_lock() {
            Ok(mut guard) => {
                let _ = guard.flush();
            }
            Err(TryLockError::Poisoned(e)) => {
                let _ = e.into_inner().flush();
            }
            Err(TryLockError::WouldBlock) => {}
        };
    }
}

/// A thread-safe, buffered JSONL writer (see module docs).
pub struct EventLog {
    sink: Arc<Sink>,
}

impl EventLog {
    /// Creates (truncating) the log file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation failure.
    pub fn create(path: &Path) -> io::Result<EventLog> {
        Ok(EventLog::from_writer(Box::new(File::create(path)?)))
    }

    /// Wraps an arbitrary sink — for tests and in-memory capture.
    #[must_use]
    pub fn from_writer(sink: Box<dyn Write + Send>) -> EventLog {
        let sink = Arc::new(Mutex::new(BufWriter::new(sink)));
        register(&sink);
        EventLog { sink }
    }

    /// Appends one event as a compact JSON line.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write failure.
    pub fn append(&self, event: &Json) -> io::Result<()> {
        let mut line = event.to_compact_string();
        debug_assert!(!line.contains('\n'), "compact JSON is one line");
        line.push('\n');
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        sink.write_all(line.as_bytes())
    }

    /// Flushes buffered lines to the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates the underlying flush failure.
    pub fn flush(&self) -> io::Result<()> {
        self.sink.lock().unwrap_or_else(|e| e.into_inner()).flush()
    }
}

impl Drop for EventLog {
    fn drop(&mut self) {
        // flush through poison too: a panic elsewhere left the buffer
        // intact (lines are appended whole), and dropping the last
        // buffered events is precisely the tail loss this guards
        // against
        let _ = self.sink.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

/// Parses a JSONL document back into its events, skipping blank lines.
///
/// # Errors
///
/// The first malformed line's error, prefixed with its 1-based line
/// number.
pub fn parse_lines(text: &str) -> Result<Vec<Json>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            crate::json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A Vec<u8> sink shared with the test through an Arc<Mutex<..>>.
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().expect("sink").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_roundtrip_line_by_line() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let log = EventLog::from_writer(Box::new(Shared(Arc::clone(&buf))));
        let events = vec![
            Json::object_from([("event", Json::from("started")), ("job", Json::from(1u64))]),
            Json::object_from([("event", Json::from("done")), ("ok", Json::Bool(true))]),
        ];
        for e in &events {
            log.append(e).expect("append");
        }
        log.flush().expect("flush");
        let text = String::from_utf8(buf.lock().expect("sink").clone()).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        assert_eq!(parse_lines(&text).expect("parse"), events);
    }

    #[test]
    fn drop_flushes_buffered_lines() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        {
            let log = EventLog::from_writer(Box::new(Shared(Arc::clone(&buf))));
            log.append(&Json::object_from([("k", Json::from(7u64))])).expect("append");
            // no explicit flush — the line may still sit in the buffer
        }
        let text = String::from_utf8(buf.lock().expect("sink").clone()).expect("utf8");
        assert_eq!(text, "{\"k\":7}\n");
    }

    #[test]
    fn embedded_newlines_are_escaped_not_literal() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let log = EventLog::from_writer(Box::new(Shared(Arc::clone(&buf))));
        log.append(&Json::object_from([("msg", Json::from("a\nb"))])).expect("append");
        log.flush().expect("flush");
        let text = String::from_utf8(buf.lock().expect("sink").clone()).expect("utf8");
        assert_eq!(text.lines().count(), 1, "escaped, not a literal newline");
        assert_eq!(parse_lines(&text).expect("parse").len(), 1);
    }

    #[test]
    fn file_backed_log_writes_jsonl() {
        let mut path = std::env::temp_dir();
        path.push(format!("obs-eventlog-{}.jsonl", std::process::id()));
        {
            let log = EventLog::create(&path).expect("create");
            for i in 0..3u64 {
                log.append(&Json::object_from([("seq", Json::from(i))])).expect("append");
            }
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        let events = parse_lines(&text).expect("parse");
        assert_eq!(events.len(), 3);
        assert_eq!(events[2].get("seq").and_then(Json::as_int), Some(2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn drop_flushes_even_after_a_poisoning_panic() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        {
            let log = Arc::new(EventLog::from_writer(Box::new(Shared(
                Arc::clone(&buf),
            ))));
            log.append(&Json::object_from([("k", Json::from(1u64))]))
                .expect("append");
            // poison the sink mutex from another thread
            let poisoner = Arc::clone(&log);
            let _ = std::thread::spawn(move || {
                let _guard =
                    poisoner.sink.lock().expect("first lock succeeds");
                panic!("poison the event-log mutex");
            })
            .join();
        }
        let text =
            String::from_utf8(buf.lock().expect("sink").clone()).expect("utf8");
        assert_eq!(text, "{\"k\":1}\n", "drop must flush through poison");
    }

    #[test]
    fn panic_hook_flushes_live_logs_before_unwind() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let log = EventLog::from_writer(Box::new(Shared(Arc::clone(&buf))));
        log.append(&Json::object_from([("k", Json::from(2u64))]))
            .expect("append");
        // keep the log alive across the panic: only the hook can have
        // flushed it when we read the sink below
        let _ = std::thread::spawn(|| panic!("trip the panic hook")).join();
        let text =
            String::from_utf8(buf.lock().expect("sink").clone()).expect("utf8");
        assert_eq!(text, "{\"k\":2}\n", "panic hook must flush live logs");
        drop(log);
    }

    #[test]
    fn parse_lines_names_the_bad_line() {
        let err = parse_lines("{\"ok\":1}\nnot json\n").expect_err("malformed");
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
