//! A buffered JSONL (one JSON document per line) event-log writer.
//!
//! Structured access logs — the daemon's job-lifecycle trail, long-run
//! progress events — want an append-only, machine-readable format that
//! survives process crashes line-by-line. JSONL is that format: each
//! line is a complete [`Json`] document, so a truncated final line (a
//! crash mid-write) costs exactly one event, and `grep`/`jq`-style
//! tooling works without a framing parser.
//!
//! [`EventLog`] serialises whole lines under one mutex, so events from
//! concurrent threads interleave at line granularity, never mid-line.
//! Writes are buffered; call [`EventLog::flush`] at quiescence points
//! (drain, shutdown) — dropping the log also flushes.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::json::Json;

/// A thread-safe, buffered JSONL writer (see module docs).
pub struct EventLog {
    sink: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl EventLog {
    /// Creates (truncating) the log file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation failure.
    pub fn create(path: &Path) -> io::Result<EventLog> {
        Ok(EventLog::from_writer(Box::new(File::create(path)?)))
    }

    /// Wraps an arbitrary sink — for tests and in-memory capture.
    #[must_use]
    pub fn from_writer(sink: Box<dyn Write + Send>) -> EventLog {
        EventLog { sink: Mutex::new(BufWriter::new(sink)) }
    }

    /// Appends one event as a compact JSON line.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write failure.
    pub fn append(&self, event: &Json) -> io::Result<()> {
        let mut line = event.to_compact_string();
        debug_assert!(!line.contains('\n'), "compact JSON is one line");
        line.push('\n');
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        sink.write_all(line.as_bytes())
    }

    /// Flushes buffered lines to the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates the underlying flush failure.
    pub fn flush(&self) -> io::Result<()> {
        self.sink.lock().unwrap_or_else(|e| e.into_inner()).flush()
    }
}

impl Drop for EventLog {
    fn drop(&mut self) {
        if let Ok(mut sink) = self.sink.lock() {
            let _ = sink.flush();
        }
    }
}

/// Parses a JSONL document back into its events, skipping blank lines.
///
/// # Errors
///
/// The first malformed line's error, prefixed with its 1-based line
/// number.
pub fn parse_lines(text: &str) -> Result<Vec<Json>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            crate::json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A Vec<u8> sink shared with the test through an Arc<Mutex<..>>.
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().expect("sink").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_roundtrip_line_by_line() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let log = EventLog::from_writer(Box::new(Shared(Arc::clone(&buf))));
        let events = vec![
            Json::object_from([("event", Json::from("started")), ("job", Json::from(1u64))]),
            Json::object_from([("event", Json::from("done")), ("ok", Json::Bool(true))]),
        ];
        for e in &events {
            log.append(e).expect("append");
        }
        log.flush().expect("flush");
        let text = String::from_utf8(buf.lock().expect("sink").clone()).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        assert_eq!(parse_lines(&text).expect("parse"), events);
    }

    #[test]
    fn drop_flushes_buffered_lines() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        {
            let log = EventLog::from_writer(Box::new(Shared(Arc::clone(&buf))));
            log.append(&Json::object_from([("k", Json::from(7u64))])).expect("append");
            // no explicit flush — the line may still sit in the buffer
        }
        let text = String::from_utf8(buf.lock().expect("sink").clone()).expect("utf8");
        assert_eq!(text, "{\"k\":7}\n");
    }

    #[test]
    fn embedded_newlines_are_escaped_not_literal() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let log = EventLog::from_writer(Box::new(Shared(Arc::clone(&buf))));
        log.append(&Json::object_from([("msg", Json::from("a\nb"))])).expect("append");
        log.flush().expect("flush");
        let text = String::from_utf8(buf.lock().expect("sink").clone()).expect("utf8");
        assert_eq!(text.lines().count(), 1, "escaped, not a literal newline");
        assert_eq!(parse_lines(&text).expect("parse").len(), 1);
    }

    #[test]
    fn file_backed_log_writes_jsonl() {
        let mut path = std::env::temp_dir();
        path.push(format!("obs-eventlog-{}.jsonl", std::process::id()));
        {
            let log = EventLog::create(&path).expect("create");
            for i in 0..3u64 {
                log.append(&Json::object_from([("seq", Json::from(i))])).expect("append");
            }
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        let events = parse_lines(&text).expect("parse");
        assert_eq!(events.len(), 3);
        assert_eq!(events[2].get("seq").and_then(Json::as_int), Some(2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_lines_names_the_bad_line() {
        let err = parse_lines("{\"ok\":1}\nnot json\n").expect_err("malformed");
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
