//! Dependency-free observability for the satverify workspace.
//!
//! Three pieces, all built on `std` alone:
//!
//! * [`span`] — lightweight named timing spans ([`span!`]) routed to a
//!   pluggable [`span::Subscriber`]. When no subscriber is installed
//!   (the default), entering a span is a single relaxed atomic load and
//!   no timestamp is taken, so instrumented hot paths cost nothing
//!   measurable.
//! * [`metrics`] — a process-global registry of named counters, gauges,
//!   and fixed-bucket histograms. All mutation is atomic, so solver and
//!   verifier worker threads can record concurrently without locks.
//! * [`json`] — an escaping-correct JSON writer (and a small strict
//!   parser used by tests and tooling) for serialising run reports
//!   without pulling in serde.
//! * [`eventlog`] — a buffered, thread-safe JSONL writer for structured
//!   access logs (one complete JSON document per line).
//! * [`prometheus`] — text exposition of a [`MetricsSnapshot`] in the
//!   format metrics scrapers expect.
//!
//! The crate deliberately has **zero external dependencies**: it must be
//! buildable in fully offline environments and addable to any crate in
//! the workspace without widening the dependency tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eventlog;
pub mod json;
pub mod metrics;
pub mod prometheus;
pub mod span;

pub use eventlog::EventLog;
pub use json::Json;
pub use metrics::{counter, gauge, histogram, registry_snapshot, MetricsSnapshot};
pub use span::{
    install_subscriber, spans_enabled, take_collected, CollectingSubscriber, Span,
    SpanSummary, Subscriber,
};
