//! Prometheus text exposition (version 0.0.4) of a [`MetricsSnapshot`].
//!
//! Dependency-free rendering of the registry into the `# TYPE` /
//! sample-line format every metrics scraper understands. Metric names
//! are sanitised (`.` and other invalid characters become `_`), and
//! histograms are rendered with the **cumulative** `_bucket{le="..."}`
//! convention Prometheus requires (the registry stores per-bucket
//! counts), closing with the mandatory `+Inf` bucket, `_sum`, and
//! `_count` samples.

use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;

/// Maps a dotted registry name onto the Prometheus grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders the snapshot in the Prometheus text exposition format.
#[must_use]
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for &(bound, count) in &h.buckets {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

    #[test]
    fn sanitises_dotted_and_awkward_names() {
        assert_eq!(sanitize_name("satverifyd.jobs.verified"), "satverifyd_jobs_verified");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn renders_counters_gauges_and_cumulative_histograms() {
        let snapshot = MetricsSnapshot {
            counters: vec![("jobs.done".into(), 12)],
            gauges: vec![("queue.depth".into(), -1)],
            histograms: vec![(
                "job.latency_us".into(),
                HistogramSnapshot {
                    count: 6,
                    sum: 1010,
                    min: 0,
                    max: 1000,
                    buckets: vec![(1, 2), (3, 2), (7, 1), (1023, 1)],
                },
            )],
        };
        let text = render(&snapshot);
        assert!(text.contains("# TYPE jobs_done counter\njobs_done 12\n"));
        assert!(text.contains("# TYPE queue_depth gauge\nqueue_depth -1\n"));
        // cumulative, not per-bucket: 2, 4, 5, 6
        assert!(text.contains("job_latency_us_bucket{le=\"1\"} 2\n"), "{text}");
        assert!(text.contains("job_latency_us_bucket{le=\"3\"} 4\n"), "{text}");
        assert!(text.contains("job_latency_us_bucket{le=\"7\"} 5\n"), "{text}");
        assert!(text.contains("job_latency_us_bucket{le=\"1023\"} 6\n"), "{text}");
        assert!(text.contains("job_latency_us_bucket{le=\"+Inf\"} 6\n"), "{text}");
        assert!(text.contains("job_latency_us_sum 1010\n"));
        assert!(text.contains("job_latency_us_count 6\n"));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render(&MetricsSnapshot::default()), "");
    }
}
