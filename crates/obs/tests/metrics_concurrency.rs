//! The metrics registry must be exact under concurrent hammering —
//! these are the counters `verify_all_parallel` workers bump from many
//! threads at once, so lost updates would silently corrupt reports.

use obs::metrics::{counter, gauge, histogram, set_recording};

const THREADS: usize = 8;
const ITERS: u64 = 10_000;

#[test]
fn counters_sum_exactly_across_threads() {
    set_recording(true);
    let c = counter("test.conc.counter");
    let before = c.get();
    crossbeam::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move |_| {
                // re-resolve the handle inside the thread, as real call
                // sites do through their OnceLock caches
                let c = counter("test.conc.counter");
                for i in 0..ITERS {
                    c.add(u64::from(t as u32 % 2) + (i & 1));
                }
            });
        }
    })
    .expect("scope");
    // per thread: sum of (t%2) + (i&1) over ITERS iterations
    let per_even_thread = ITERS / 2; // t%2 == 0: only i&1 contributes
    let per_odd_thread = ITERS + ITERS / 2; // t%2 == 1: 1 + i&1
    let expected = (THREADS as u64 / 2) * (per_even_thread + per_odd_thread);
    assert_eq!(c.get() - before, expected);
}

#[test]
fn gauge_adds_are_not_lost() {
    set_recording(true);
    let g = gauge("test.conc.gauge");
    g.set(0);
    crossbeam::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move |_| {
                let g = gauge("test.conc.gauge");
                let delta = if t % 2 == 0 { 3 } else { -2 };
                for _ in 0..ITERS {
                    g.add(delta);
                }
            });
        }
    })
    .expect("scope");
    // each +3/-2 thread pair nets +1 per iteration
    let expected = (THREADS as i64 / 2) * ITERS as i64;
    assert_eq!(g.get(), expected);
}

#[test]
fn histogram_count_sum_min_max_are_exact() {
    set_recording(true);
    let h = histogram("test.conc.histogram");
    crossbeam::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move |_| {
                let h = histogram("test.conc.histogram");
                for i in 1..=ITERS {
                    h.record(i + t as u64 * ITERS);
                }
            });
        }
    })
    .expect("scope");
    let snap = h.snapshot();
    let n = THREADS as u64 * ITERS;
    assert_eq!(snap.count, n);
    assert_eq!(snap.sum, n * (n + 1) / 2, "values were 1..=THREADS*ITERS");
    assert_eq!(snap.min, 1);
    assert_eq!(snap.max, n);
    let bucket_total: u64 = snap.buckets.iter().map(|&(_, c)| c).sum();
    assert_eq!(bucket_total, n, "every sample lands in exactly one bucket");
}

#[test]
fn snapshot_while_hammering_is_internally_consistent() {
    set_recording(true);
    let c = counter("test.conc.live");
    crossbeam::scope(|s| {
        for _ in 0..4 {
            s.spawn(move |_| {
                let c = counter("test.conc.live");
                for _ in 0..ITERS {
                    c.inc();
                }
            });
        }
        // snapshot concurrently with the writers: the value must never
        // exceed the final total nor go backwards between reads
        let mut last = 0;
        for _ in 0..100 {
            let now = obs::registry_snapshot().counter("test.conc.live").unwrap_or(0);
            assert!(now >= last, "counter went backwards: {last} -> {now}");
            last = now;
        }
    })
    .expect("scope");
    assert_eq!(c.get(), 4 * ITERS);
}
