//! Round-trip tests for the JSON writer against an *independent*
//! parser written in this file — so a bug in `obs::json::parse` cannot
//! mask a matching bug in the writer — plus property tests over
//! arbitrary strings.

use obs::Json;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// A tiny independent JSON parser. Deliberately shares no code with
// obs::json::parse: recursive descent over bytes, floats via
// str::parse, strings with short escapes and \uXXXX (incl. surrogate
// pairs).
// ---------------------------------------------------------------------

struct Mini<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Mini<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Mini { bytes: text.as_bytes(), pos: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at {}", p.pos));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(format!("expected {token:?} at {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
            None => Err("unexpected end".into()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or("short \\u escape")?;
        self.pos = end;
        u16::from_str_radix(digits, 16).map_err(|e| format!("bad \\u{digits}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self.bytes.get(self.pos).ok_or("dangling escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                self.eat("\\u")?;
                                let lo = self.hex4()?;
                                let code = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(code).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(u32::from(hi)).ok_or("lone surrogate")?
                            };
                            out.push(c);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // raw UTF-8: take one full scalar value
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| format!("invalid UTF-8: {e}"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected , or ] at {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat("{")?;
        let mut pairs = Vec::new();
        self.ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(":")?;
            self.ws();
            pairs.push((key, self.value()?));
            self.ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(format!("expected , or }} at {}", self.pos)),
            }
        }
    }
}

fn mini(text: &str) -> Json {
    Mini::parse(text).expect("independent parser accepts writer output")
}

// ---------------------------------------------------------------------
// Escaping
// ---------------------------------------------------------------------

#[test]
fn quotes_and_backslashes_escape() {
    let j = Json::from(r#"a "quoted" \path\"#);
    let text = j.to_compact_string();
    assert_eq!(text, r#""a \"quoted\" \\path\\""#);
    assert_eq!(mini(&text), j);
}

#[test]
fn control_characters_escape() {
    let j = Json::from("line1\nline2\ttab\r\u{0}\u{1f}\u{8}\u{c}");
    let text = j.to_compact_string();
    assert!(text.contains("\\n"), "{text}");
    assert!(text.contains("\\t"), "{text}");
    assert!(text.contains("\\u0000"), "{text}");
    assert!(text.contains("\\u001f"), "{text}");
    for b in text.bytes() {
        assert!(b >= 0x20, "raw control byte {b:#x} in output {text:?}");
    }
    assert_eq!(mini(&text), j);
}

#[test]
fn non_finite_floats_serialise_as_null() {
    assert_eq!(Json::Float(f64::NAN).to_compact_string(), "null");
    assert_eq!(Json::Float(f64::INFINITY).to_compact_string(), "null");
    assert_eq!(Json::Float(f64::NEG_INFINITY).to_compact_string(), "null");
    let arr = Json::array([Json::Float(f64::NAN), Json::Float(1.5)]);
    assert_eq!(mini(&arr.to_compact_string()), Json::array([Json::Null, Json::Float(1.5)]));
}

#[test]
fn unicode_passes_through_raw() {
    let j = Json::from("päivä ✓ 😀");
    let text = j.to_compact_string();
    assert!(text.contains("päivä ✓ 😀"), "{text}");
    assert_eq!(mini(&text), j);
}

// ---------------------------------------------------------------------
// Full-document round-trip
// ---------------------------------------------------------------------

/// A document shaped like a real `RunReport`.
fn report_like() -> Json {
    Json::object_from([
        ("schema_version", Json::Int(1)),
        ("tool", Json::from("satverify")),
        ("result", Json::from("UNSAT")),
        (
            "solver",
            Json::object_from([
                ("decisions", Json::Int(174)),
                ("conflicts", Json::Int(144)),
                ("proof_literals", Json::Int(1161)),
            ]),
        ),
        (
            "verification",
            Json::object_from([
                ("tested_fraction", Json::Float(0.9861111111111112)),
                ("core_fraction", Json::Float(1.0)),
                ("verify_time_s", Json::Float(0.002650012)),
            ]),
        ),
        (
            "spans",
            Json::array([Json::object_from([
                ("name", Json::from("cdcl.bcp")),
                ("count", Json::Int(319)),
                ("total_s", Json::Float(0.001352)),
            ])]),
        ),
        ("empty_list", Json::Array(vec![])),
        ("empty_obj", Json::Object(vec![])),
        ("nothing", Json::Null),
        ("flag", Json::Bool(true)),
    ])
}

#[test]
fn report_document_roundtrips_compact_and_pretty() {
    let doc = report_like();
    assert_eq!(mini(&doc.to_compact_string()), doc);
    assert_eq!(mini(&doc.to_pretty_string()), doc);
    // and through obs's own parser, for good measure
    assert_eq!(obs::json::parse(&doc.to_pretty_string()).expect("parse"), doc);
}

// ---------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_strings_roundtrip_through_both_parsers(
        chars in prop::collection::vec(any::<char>(), 0..48),
    ) {
        let s: String = chars.into_iter().collect();
        let j = Json::from(s);
        let text = j.to_compact_string();
        prop_assert_eq!(&mini(&text), &j);
        prop_assert_eq!(&obs::json::parse(&text).expect("own parser"), &j);
    }

    #[test]
    fn arbitrary_ints_and_floats_roundtrip(n in any::<i64>(), x in any::<u64>()) {
        let int = Json::Int(n);
        prop_assert_eq!(&mini(&int.to_compact_string()), &int);
        // map the u64 onto a finite float via division
        let f = (x as f64) / 1e3;
        let float = Json::Float(f);
        match mini(&float.to_compact_string()) {
            Json::Float(back) => prop_assert_eq!(back, f),
            Json::Int(back) => prop_assert_eq!(back as f64, f),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn arbitrary_string_keys_roundtrip_in_objects(
        chars in prop::collection::vec(any::<char>(), 0..24),
        value in any::<i64>(),
    ) {
        let key: String = chars.into_iter().collect();
        let doc = Json::object_from([(key.clone(), Json::Int(value))]);
        let parsed = mini(&doc.to_pretty_string());
        prop_assert_eq!(parsed.get(&key), Some(&Json::Int(value)));
    }
}
