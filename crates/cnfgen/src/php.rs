//! Pigeonhole formulas.

use cnf::CnfFormula;

/// The pigeonhole principle PHP(m, n): `m = holes + 1` pigeons into
/// `holes` holes. Variable `p·holes + h + 1` means "pigeon `p` sits in
/// hole `h`". Unsatisfiable, minimally so (every clause is in the core),
/// and exponentially hard for resolution — a classic stress test for
/// proof generation and checking.
///
/// # Panics
///
/// Panics if `holes == 0`.
///
/// # Examples
///
/// ```
/// let f = cnfgen::pigeonhole(3);
/// assert_eq!(f.num_vars(), 12); // 4 pigeons × 3 holes
/// assert!(!f.brute_force_satisfiable());
/// ```
#[must_use]
pub fn pigeonhole(holes: usize) -> CnfFormula {
    assert!(holes > 0, "need at least one hole");
    let pigeons = holes + 1;
    let mut formula = CnfFormula::new();
    let var = |p: usize, h: usize| (p * holes + h + 1) as i32;
    // every pigeon sits somewhere
    for p in 0..pigeons {
        formula.add_dimacs_clause(&(0..holes).map(|h| var(p, h)).collect::<Vec<_>>());
    }
    // no two pigeons share a hole
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                formula.add_dimacs_clause(&[-var(p1, h), -var(p2, h)]);
            }
        }
    }
    formula
}

/// A *satisfiable* variant with as many pigeons as holes — used to test
/// that generators and the pipeline handle SAT outcomes.
///
/// # Panics
///
/// Panics if `holes == 0`.
#[must_use]
pub fn pigeonhole_sat(holes: usize) -> CnfFormula {
    assert!(holes > 0, "need at least one hole");
    let mut formula = CnfFormula::new();
    let var = |p: usize, h: usize| (p * holes + h + 1) as i32;
    for p in 0..holes {
        formula.add_dimacs_clause(&(0..holes).map(|h| var(p, h)).collect::<Vec<_>>());
    }
    for h in 0..holes {
        for p1 in 0..holes {
            for p2 in p1 + 1..holes {
                formula.add_dimacs_clause(&[-var(p1, h), -var(p2, h)]);
            }
        }
    }
    formula
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn php_shape() {
        let f = pigeonhole(3);
        // 4 at-least-one clauses + 3 holes × C(4,2)=6 pairs
        assert_eq!(f.num_clauses(), 4 + 3 * 6);
        assert_eq!(f.num_vars(), 12);
    }

    #[test]
    fn php_small_is_unsat() {
        assert!(!pigeonhole(1).brute_force_satisfiable());
        assert!(!pigeonhole(2).brute_force_satisfiable());
        assert!(!pigeonhole(3).brute_force_satisfiable());
    }

    #[test]
    fn php_sat_variant_is_sat() {
        assert!(pigeonhole_sat(2).brute_force_satisfiable());
        assert!(pigeonhole_sat(3).brute_force_satisfiable());
    }
}
