//! Circuit-derived CNF families: the formal-verification workloads of
//! the paper's §6, synthesized with the `circuit` crate.

use circuit::{
    alu, barrel_shifter_decoded, barrel_shifter_log, bmc_formula, carry_select_adder,
    miter_formula, ripple_carry_adder, shift_add_multiplier, AluStyle, Netlist,
};
use cnf::CnfFormula;

/// Equivalence miter of a ripple-carry adder against a carry-select
/// adder over `width`-bit operands — **unsatisfiable**. Stands in for
/// the paper's ISCAS equivalence-checking instances (`c7552`).
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn eqv_adder(width: usize) -> CnfFormula {
    assert!(width > 0, "adder width must be positive");
    miter_formula(
        2 * width,
        move |n, io| {
            let (sum, cout) = ripple_carry_adder(n, &io[..width], &io[width..]);
            let mut out = sum;
            out.push(cout);
            out
        },
        move |n, io| {
            let (sum, cout) = carry_select_adder(n, &io[..width], &io[width..], 3);
            let mut out = sum;
            out.push(cout);
            out
        },
    )
}

/// Equivalence miter of the logarithmic barrel shifter against the
/// decoded one over a `width`-bit bus with `shift_bits` of shift amount
/// — **unsatisfiable**. Stands in for the PicoJava datapath instances.
///
/// # Panics
///
/// Panics if `width == 0` or `shift_bits == 0`.
#[must_use]
pub fn eqv_shifter(width: usize, shift_bits: usize) -> CnfFormula {
    assert!(width > 0 && shift_bits > 0, "degenerate shifter");
    miter_formula(
        width + shift_bits,
        move |n, io| barrel_shifter_log(n, &io[..width], &io[width..]),
        move |n, io| barrel_shifter_decoded(n, &io[..width], &io[width..]),
    )
}

/// Equivalence miter of the reference ALU datapath against its
/// NAND/NOR-decomposed, carry-select implementation — **unsatisfiable**.
/// Stands in for the Velev pipelined-microprocessor obligations (after
/// the standard flattening of pipeline forwarding into a combinational
/// datapath); scale with `width`.
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn pipe_cpu(width: usize) -> CnfFormula {
    assert!(width > 0, "datapath width must be positive");
    miter_formula(
        2 * width + 2,
        move |n, io| {
            alu(n, &io[..width], &io[width..2 * width], &io[2 * width..], AluStyle::Reference)
        },
        move |n, io| {
            alu(n, &io[..width], &io[width..2 * width], &io[2 * width..], AluStyle::Optimized)
        },
    )
}

/// A *buggy* variant of [`pipe_cpu`]: the optimized datapath corrupts
/// its top result bit with the opcode — **satisfiable** (the miter finds
/// the discrepancy). Used to test SAT outcomes on realistic circuits.
///
/// # Panics
///
/// Panics if `width < 2`.
#[must_use]
pub fn pipe_cpu_buggy(width: usize) -> CnfFormula {
    assert!(width >= 2, "bug needs at least two bits");
    miter_formula(
        2 * width + 2,
        move |n, io| {
            alu(n, &io[..width], &io[width..2 * width], &io[2 * width..], AluStyle::Reference)
        },
        move |n, io| {
            let mut out = alu(
                n,
                &io[..width],
                &io[width..2 * width],
                &io[2 * width..],
                AluStyle::Optimized,
            );
            // corrupt the top bit: xor with the opcode's low bit
            let top = out[width - 1];
            out[width - 1] = n.xor2(top, io[2 * width]);
            out
        },
    )
}

/// Commutativity miter of the shift-add multiplier:
/// `a·b` against `b·a` — **unsatisfiable**, and notoriously hard for
/// resolution-based solvers even at small widths. Stands in for the
/// paper's `longmult` instances (which unroll a sequential multiplier).
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn eqv_mult(width: usize) -> CnfFormula {
    assert!(width > 0, "multiplier width must be positive");
    miter_formula(
        2 * width,
        move |n, io| shift_add_multiplier(n, &io[..width], &io[width..]),
        move |n, io| shift_add_multiplier(n, &io[width..], &io[..width]),
    )
}

/// BMC of an *enabled* LFSR (the shift only advances when the free
/// `enable` input is high): the zero state is unreachable from the
/// one-hot reset within `k` steps — **unsatisfiable** for every `k`.
/// The free input makes each frame genuinely nondeterministic, so the
/// solver must search rather than merely propagate. Stands in for the
/// `barrel`/`longmult` BMC instances; scale with both `bits` and `k`.
///
/// # Panics
///
/// Panics if `bits < 2` or `k == 0`.
#[must_use]
pub fn bmc_lfsr(bits: usize, k: usize) -> CnfFormula {
    assert!(bits >= 2, "lfsr needs at least 2 bits");
    assert!(k >= 1, "need at least one frame");
    let mut n = Netlist::new();
    let en = n.input();
    let state: Vec<_> = (0..bits).map(|i| n.latch(i == 0)).collect();
    // taps include the top bit, making the zero state unreachable
    let feedback = n.xor2(state[bits - 1], state[bits / 2]);
    let next0 = n.mux(en, feedback, state[0]);
    n.connect_next(state[0], next0);
    for i in 1..bits {
        let shifted = n.mux(en, state[i - 1], state[i]);
        n.connect_next(state[i], shifted);
    }
    let inverted: Vec<_> = state.iter().map(|&s| n.not(s)).collect();
    let bad = n.and_many(&inverted);
    n.set_output("bad", bad);
    bmc_formula(&n, bad, k)
}

/// BMC of an *enabled* counter (increments only when the free `enable`
/// input is high): after `k` frames the count is at most `k − 1`, so
/// `count == k` is unreachable — **unsatisfiable**, with difficulty and
/// proof size growing with `k`. The free input forces real search.
/// Stands in for the `fifo8` family of Table 3.
///
/// # Panics
///
/// Panics if `k == 0` or `k ≥ 2^bits`.
#[must_use]
pub fn bmc_counter(bits: usize, k: usize) -> CnfFormula {
    assert!(k >= 1, "need at least one frame");
    assert!(k < (1usize << bits), "target must be representable");
    let mut n = Netlist::new();
    let en = n.input();
    let state: Vec<_> = (0..bits).map(|_| n.latch(false)).collect();
    let mut carry = en;
    for &bit in &state {
        let inc = n.xor2(bit, carry);
        n.connect_next(bit, inc);
        carry = n.and2(carry, bit);
    }
    // bad = (state == k)
    let eq_bits: Vec<_> = state
        .iter()
        .enumerate()
        .map(|(i, &s)| if k >> i & 1 == 1 { s } else { n.not(s) })
        .collect();
    let bad = n.and_many(&eq_bits);
    n.set_output("bad", bad);
    bmc_formula(&n, bad, k)
}

/// Builds the 2-stage pipelined ALU datapath: operands and opcode are
/// registered, the ALU (in the given style) computes, and the result is
/// registered — output latency two cycles.
fn pipelined_alu(width: usize, style: AluStyle) -> Netlist {
    let mut n = Netlist::new();
    let a = n.inputs(width);
    let b = n.inputs(width);
    let op = n.inputs(2);
    // stage 1: input registers
    let reg = |n: &mut Netlist, xs: &[circuit::NodeId]| -> Vec<circuit::NodeId> {
        xs.iter()
            .map(|&x| {
                let q = n.latch(false);
                n.connect_next(q, x);
                q
            })
            .collect()
    };
    let ra = reg(&mut n, &a);
    let rb = reg(&mut n, &b);
    let rop = reg(&mut n, &op);
    // stage 2: compute and register the result
    let result = alu(&mut n, &ra, &rb, &rop, style);
    let rout = reg(&mut n, &result);
    for (i, &q) in rout.iter().enumerate() {
        n.set_output(format!("r{i}"), q);
    }
    n
}

/// The sequential specification: inputs delayed through two register
/// stages, then the reference ALU combinationally — the ISA-level view
/// of the same two-cycle-latency datapath.
fn delayed_reference_alu(width: usize) -> Netlist {
    let mut n = Netlist::new();
    let a = n.inputs(width);
    let b = n.inputs(width);
    let op = n.inputs(2);
    let delay2 = |n: &mut Netlist, xs: &[circuit::NodeId]| -> Vec<circuit::NodeId> {
        xs.iter()
            .map(|&x| {
                let q1 = n.latch(false);
                n.connect_next(q1, x);
                let q2 = n.latch(false);
                n.connect_next(q2, q1);
                q2
            })
            .collect()
    };
    let da = delay2(&mut n, &a);
    let db = delay2(&mut n, &b);
    let dop = delay2(&mut n, &op);
    let result = alu(&mut n, &da, &db, &dop, AluStyle::Reference);
    for (i, &r) in result.iter().enumerate() {
        n.set_output(format!("r{i}"), r);
    }
    n
}

/// Sequential equivalence of the 2-stage pipelined (NAND/NOR-optimised)
/// ALU datapath against its delayed ISA-level specification, unrolled
/// `k` cycles — **unsatisfiable**. The closest model of the paper\'s
/// Velev pipelined-microprocessor obligations: a real pipeline with
/// state, checked against a reference machine, so the unrolled CNF must
/// prove the two ALU implementations equal on every value the pipeline
/// registers can carry within `k` cycles.
///
/// # Panics
///
/// Panics if `width == 0` or `k == 0`.
#[must_use]
pub fn pipe_cpu_seq(width: usize, k: usize) -> CnfFormula {
    assert!(width > 0, "datapath width must be positive");
    assert!(k >= 1, "need at least one cycle");
    let implementation = pipelined_alu(width, AluStyle::Optimized);
    let specification = delayed_reference_alu(width);
    circuit::sec_formula(&implementation, &specification, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdcl::{solve, SolverConfig};

    fn is_unsat(f: &CnfFormula) -> bool {
        solve(f, SolverConfig::default()).is_unsat()
    }

    #[test]
    fn adder_miters_are_unsat() {
        for width in [2, 4, 6] {
            assert!(is_unsat(&eqv_adder(width)), "eqv_adder({width})");
        }
    }

    #[test]
    fn shifter_miters_are_unsat() {
        assert!(is_unsat(&eqv_shifter(4, 2)));
        assert!(is_unsat(&eqv_shifter(8, 3)));
    }

    #[test]
    fn cpu_datapath_miter_is_unsat() {
        for width in [2, 4] {
            assert!(is_unsat(&pipe_cpu(width)), "pipe_cpu({width})");
        }
    }

    #[test]
    fn buggy_datapath_miter_is_sat() {
        let f = pipe_cpu_buggy(3);
        match solve(&f, SolverConfig::default()) {
            cdcl::SolveResult::Sat(model) => assert!(f.is_satisfied_by(&model)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn multiplier_commutativity_miter_is_unsat() {
        assert!(is_unsat(&eqv_mult(2)));
        assert!(is_unsat(&eqv_mult(3)));
    }

    #[test]
    fn bmc_families_are_unsat() {
        assert!(is_unsat(&bmc_lfsr(4, 3)));
        assert!(is_unsat(&bmc_lfsr(6, 8)));
        assert!(is_unsat(&bmc_counter(4, 5)));
        assert!(is_unsat(&bmc_counter(5, 12)));
    }

    #[test]
    #[should_panic(expected = "representable")]
    fn counter_target_must_fit() {
        let _ = bmc_counter(3, 8);
    }

    #[test]
    fn pipelined_datapath_sec_is_unsat() {
        assert!(is_unsat(&pipe_cpu_seq(2, 3)));
        assert!(is_unsat(&pipe_cpu_seq(3, 4)));
    }
}
