//! Pebbling contradictions on pyramid graphs.

use cnf::CnfFormula;

/// The pebbling contradiction on a pyramid of `height` levels, with two
/// variables per node (the "xorified" form that defeats pure unit
/// propagation): sources hold `(v₁ ∨ v₂)`, each internal node is implied
/// by its two children, and the apex is refuted.
///
/// Unsatisfiable; easy for CDCL with learning, hard for tree-like
/// resolution — a proof-complexity classic that exercises long
/// implication chains in the checker.
///
/// # Panics
///
/// Panics if `height == 0`.
///
/// # Examples
///
/// ```
/// let f = cnfgen::pebbling_pyramid(2);
/// assert!(!f.brute_force_satisfiable());
/// ```
#[must_use]
pub fn pebbling_pyramid(height: usize) -> CnfFormula {
    assert!(height > 0, "pyramid needs at least one level");
    // level 0 is the base with `height` nodes; level l has height−l
    // nodes; the apex is at level height−1.
    let mut formula = CnfFormula::new();
    // node (l, i) → pair of DIMACS vars
    let node_index = |l: usize, i: usize| {
        // offset = sum_{j<l} (height - j)
        let offset: usize = (0..l).map(|j| height - j).sum();
        offset + i
    };
    let vars = |l: usize, i: usize| {
        let k = node_index(l, i);
        ((2 * k + 1) as i32, (2 * k + 2) as i32)
    };
    // sources
    for i in 0..height {
        let (v1, v2) = vars(0, i);
        formula.add_dimacs_clause(&[v1, v2]);
    }
    // internal implications: children (l-1, i) and (l-1, i+1)
    for l in 1..height {
        for i in 0..height - l {
            let (a1, a2) = vars(l - 1, i);
            let (b1, b2) = vars(l - 1, i + 1);
            let (v1, v2) = vars(l, i);
            for a in [a1, a2] {
                for b in [b1, b2] {
                    formula.add_dimacs_clause(&[-a, -b, v1, v2]);
                }
            }
        }
    }
    // refute the apex
    let (t1, t2) = vars(height - 1, 0);
    formula.add_dimacs_clause(&[-t1]);
    formula.add_dimacs_clause(&[-t2]);
    formula
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_pyramids_are_unsat() {
        assert!(!pebbling_pyramid(1).brute_force_satisfiable());
        assert!(!pebbling_pyramid(2).brute_force_satisfiable());
        assert!(!pebbling_pyramid(3).brute_force_satisfiable());
    }

    #[test]
    fn counts() {
        // height 3: nodes 3+2+1 = 6 → 12 vars;
        // clauses: 3 sources + (2+1)*4 implications + 2 apex units
        let f = pebbling_pyramid(3);
        assert_eq!(f.num_vars(), 12);
        assert_eq!(f.num_clauses(), 3 + 12 + 2);
    }

    #[test]
    fn dropping_apex_refutation_makes_it_sat() {
        let f = pebbling_pyramid(2);
        // remove the two final unit clauses
        let indices: Vec<usize> = (0..f.num_clauses() - 2).collect();
        let g = f.subformula(&indices);
        assert!(g.brute_force_satisfiable());
    }
}
