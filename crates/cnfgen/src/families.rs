//! The instance registry: named UNSAT instances standing in for the
//! paper's benchmark rows (see `DESIGN.md` §3 for the substitution
//! table).

use cnf::CnfFormula;

use crate::chessboard::mutilated_chessboard;
use crate::circuits::{
    bmc_counter, bmc_lfsr, eqv_adder, eqv_mult, eqv_shifter, pipe_cpu, pipe_cpu_seq,
};
use crate::pebbling::pebbling_pyramid;
use crate::php::pigeonhole;
use crate::random_ksat::random_ksat;
use crate::tseitin_graph::tseitin_grid;

/// A named benchmark instance.
#[derive(Clone, Debug)]
pub struct NamedInstance {
    /// Instance name, e.g. `pipe_cpu12`.
    pub name: String,
    /// The application domain of the paper's corresponding family.
    pub domain: &'static str,
    /// The CNF formula (always unsatisfiable in the default registry).
    pub formula: CnfFormula,
}

impl NamedInstance {
    fn new(name: impl Into<String>, domain: &'static str, formula: CnfFormula) -> Self {
        NamedInstance { name: name.into(), domain, formula }
    }
}

/// The default benchmark suite used by the Table 1 / Table 2 harnesses.
///
/// Sizes are chosen so the whole suite solves and verifies in seconds on
/// a laptop while still producing proofs with tens of thousands of
/// clauses — the paper's trends (tested %, core %, proof-size ratios)
/// are scale-free.
#[must_use]
pub fn table_suite() -> Vec<NamedInstance> {
    vec![
        // microprocessor datapath verification (for Velev's pipe/vliw)
        NamedInstance::new("pipe_cpu8", "cpu verification", pipe_cpu(8)),
        NamedInstance::new("pipe_cpu16", "cpu verification", pipe_cpu(16)),
        NamedInstance::new("pipe_cpu24", "cpu verification", pipe_cpu(24)),
        NamedInstance::new("pipe_seq8_6", "cpu verification", pipe_cpu_seq(8, 6)),
        // combinational equivalence checking (for PicoJava exmp7x, c7552)
        NamedInstance::new("eqv_add16", "equivalence checking", eqv_adder(16)),
        NamedInstance::new("eqv_add32", "equivalence checking", eqv_adder(32)),
        NamedInstance::new("eqv_shift16", "equivalence checking", eqv_shifter(16, 4)),
        NamedInstance::new("eqv_shift32", "equivalence checking", eqv_shifter(32, 5)),
        NamedInstance::new("eqv_mult6", "equivalence checking", eqv_mult(6)),
        // bounded model checking (for barrel/longmult/w10)
        NamedInstance::new("bmc_lfsr16_20", "bounded model checking", bmc_lfsr(16, 20)),
        NamedInstance::new("bmc_lfsr32_32", "bounded model checking", bmc_lfsr(32, 32)),
        NamedInstance::new("bmc_cnt8_40", "bounded model checking", bmc_counter(8, 40)),
        NamedInstance::new("bmc_cnt8_80", "bounded model checking", bmc_counter(8, 80)),
        NamedInstance::new("bmc_cnt8_120", "bounded model checking", bmc_counter(8, 120)),
        // hard combinatorics (for the SAT-2002 w10 mix)
        NamedInstance::new("php8", "combinatorial", pigeonhole(8)),
        NamedInstance::new("tseitin4x4", "combinatorial", tseitin_grid(4, 4)),
        NamedInstance::new("tseitin4x5", "combinatorial", tseitin_grid(4, 5)),
        NamedInstance::new("chess10", "combinatorial", mutilated_chessboard(10)),
        NamedInstance::new("pebbling24", "combinatorial", pebbling_pyramid(24)),
        NamedInstance::new(
            "rand3sat_120",
            "random",
            random_ksat(3, 120, 640, RAND3SAT_SEED_120),
        ),
        NamedInstance::new(
            "rand3sat_150",
            "random",
            random_ksat(3, 150, 800, RAND3SAT_SEED_150),
        ),
    ]
}

/// Seeds pinned (by the test suite) to produce UNSAT random instances.
pub const RAND3SAT_SEED_120: u64 = 20030310;
/// See [`RAND3SAT_SEED_120`].
pub const RAND3SAT_SEED_150: u64 = 20030311;

/// The growing family for Table 3: the BMC counter at increasing unroll
/// depths, mirroring the paper's `fifo8_{200,300,400}` scaling study.
/// The Table 3 harness solves these with the decision ("global")
/// learning scheme, whose resolution graphs blow up with depth — the
/// effect the paper's table demonstrates.
#[must_use]
pub fn table3_suite() -> Vec<NamedInstance> {
    [20usize, 40, 60, 80]
        .into_iter()
        .map(|k| {
            NamedInstance::new(
                format!("bmc_cnt8_{k}"),
                "bounded model checking",
                bmc_counter(8, k),
            )
        })
        .collect()
}

/// A small suite for quick smoke tests and CI.
#[must_use]
pub fn smoke_suite() -> Vec<NamedInstance> {
    vec![
        NamedInstance::new("pipe_cpu4", "cpu verification", pipe_cpu(4)),
        NamedInstance::new("eqv_add6", "equivalence checking", eqv_adder(6)),
        NamedInstance::new("bmc_lfsr8_8", "bounded model checking", bmc_lfsr(8, 8)),
        NamedInstance::new("php5", "combinatorial", pigeonhole(5)),
        NamedInstance::new("tseitin3x3", "combinatorial", tseitin_grid(3, 3)),
        NamedInstance::new("chess6", "combinatorial", mutilated_chessboard(6)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_nonempty_and_uniquely_named() {
        for suite in [table_suite(), table3_suite(), smoke_suite()] {
            assert!(!suite.is_empty());
            let mut names: Vec<&str> = suite.iter().map(|i| i.name.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before, "duplicate instance names");
            for inst in &suite {
                assert!(inst.formula.num_clauses() > 0, "{} is empty", inst.name);
            }
        }
    }

    #[test]
    fn smoke_suite_is_unsat() {
        for inst in smoke_suite() {
            let result = cdcl::solve(&inst.formula, cdcl::SolverConfig::default());
            assert!(result.is_unsat(), "{} must be UNSAT", inst.name);
        }
    }

    #[test]
    fn pinned_random_seeds_are_unsat() {
        for (vars, clauses, seed) in
            [(120, 640, RAND3SAT_SEED_120), (150, 800, RAND3SAT_SEED_150)]
        {
            let f = random_ksat(3, vars, clauses, seed);
            let result = cdcl::solve(&f, cdcl::SolverConfig::default());
            assert!(result.is_unsat(), "seed {seed} must give an UNSAT instance");
        }
    }
}
