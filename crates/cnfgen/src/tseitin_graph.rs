//! Tseitin parity formulas on toroidal grids.

use cnf::{CnfFormula, Lit};

/// A Tseitin parity formula on an `n × m` toroidal grid.
///
/// One variable per edge; each vertex constrains the XOR of its four
/// incident edges to equal its *charge*. The formula is unsatisfiable
/// iff the total charge is odd (here: exactly one vertex charged), and
/// is a classic hard instance for resolution-based solvers.
///
/// # Panics
///
/// Panics if `n < 2` or `m < 2` (a torus needs distinct neighbours).
///
/// # Examples
///
/// ```
/// let f = cnfgen::tseitin_grid(2, 2);
/// assert!(!f.brute_force_satisfiable());
/// ```
#[must_use]
pub fn tseitin_grid(n: usize, m: usize) -> CnfFormula {
    assert!(n >= 2 && m >= 2, "torus needs at least 2×2 vertices");
    // Edge numbering: horizontal edge (i,j)→(i,j+1 mod m) gets index
    // i*m + j; vertical edge (i,j)→(i+1 mod n, j) gets n*m + i*m + j.
    let h_edge = |i: usize, j: usize| (i * m + j) as i32 + 1;
    let v_edge = |i: usize, j: usize| (n * m + i * m + j) as i32 + 1;

    let mut formula = CnfFormula::new();
    for i in 0..n {
        for j in 0..m {
            // incident edges: right, left, down, up
            let edges = [
                h_edge(i, j),
                h_edge(i, (j + m - 1) % m),
                v_edge(i, j),
                v_edge((i + n - 1) % n, j),
            ];
            let charge = i == 0 && j == 0; // single odd vertex
            add_parity_clauses(&mut formula, &edges, charge);
        }
    }
    formula
}

/// Adds the CNF expansion of `e₁ ⊕ … ⊕ eₖ = charge` (2^{k-1} clauses).
fn add_parity_clauses(formula: &mut CnfFormula, edges: &[i32], charge: bool) {
    let k = edges.len();
    for mask in 0u32..(1 << k) {
        // forbid assignments whose parity differs from the charge: a
        // clause negating each such full assignment
        let ones = mask.count_ones() as usize;
        let parity = ones % 2 == 1;
        if parity == charge {
            continue;
        }
        let clause: Vec<Lit> = edges
            .iter()
            .enumerate()
            .map(|(idx, &e)| {
                // the forbidden assignment sets edge true iff bit set;
                // negate it in the clause
                if mask >> idx & 1 == 1 {
                    Lit::from_dimacs(-e)
                } else {
                    Lit::from_dimacs(e)
                }
            })
            .collect();
        formula.add_clause(clause.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_charge_grid_is_unsat() {
        assert!(!tseitin_grid(2, 2).brute_force_satisfiable());
        assert!(!tseitin_grid(2, 3).brute_force_satisfiable());
    }

    #[test]
    fn clause_and_var_counts() {
        let f = tseitin_grid(2, 2);
        assert_eq!(f.num_vars(), 8); // 2·n·m edges
        assert_eq!(f.num_clauses(), 4 * 8); // n·m vertices × 2^{4-1}
    }

    #[test]
    fn parity_clause_expansion() {
        let mut f = CnfFormula::new();
        add_parity_clauses(&mut f, &[1, 2], false); // x1 ⊕ x2 = 0
        // forbidden: (1,0) and (0,1)
        assert_eq!(f.num_clauses(), 2);
        // x1=1,x2=0 must violate some clause
        let mut a = cnf::Assignment::new(2);
        a.assign(Lit::from_dimacs(1));
        a.assign(Lit::from_dimacs(-2));
        assert!(!f.is_satisfied_by(&a));
        let mut b = cnf::Assignment::new(2);
        b.assign(Lit::from_dimacs(1));
        b.assign(Lit::from_dimacs(2));
        assert!(f.is_satisfied_by(&b));
    }
}
