//! The mutilated chessboard.

use cnf::CnfFormula;

/// The mutilated-chessboard problem: tile an `n × n` board with two
/// opposite corners removed by dominoes. One variable per edge between
/// adjacent remaining cells; each cell must be covered exactly once.
/// Unsatisfiable for even `n` (the removed corners share a colour), and
/// famously hard for resolution.
///
/// # Panics
///
/// Panics if `n < 2` or `n` is odd.
///
/// # Examples
///
/// ```
/// let f = cnfgen::mutilated_chessboard(4);
/// assert!(!f.brute_force_satisfiable());
/// ```
#[must_use]
pub fn mutilated_chessboard(n: usize) -> CnfFormula {
    assert!(n >= 2, "board needs at least 2×2 cells");
    assert!(n.is_multiple_of(2), "odd boards are trivially untileable; use even n");
    let removed = |r: usize, c: usize| (r == 0 && c == 0) || (r == n - 1 && c == n - 1);

    // enumerate edges between live cells
    let mut edges: Vec<((usize, usize), (usize, usize))> = Vec::new();
    for r in 0..n {
        for c in 0..n {
            if removed(r, c) {
                continue;
            }
            if c + 1 < n && !removed(r, c + 1) {
                edges.push(((r, c), (r, c + 1)));
            }
            if r + 1 < n && !removed(r + 1, c) {
                edges.push(((r, c), (r + 1, c)));
            }
        }
    }
    let mut formula = CnfFormula::with_vars(edges.len());
    let edge_var = |idx: usize| (idx + 1) as i32;

    // per-cell incident edge lists
    for r in 0..n {
        for c in 0..n {
            if removed(r, c) {
                continue;
            }
            let incident: Vec<i32> = edges
                .iter()
                .enumerate()
                .filter(|(_, &(a, b))| a == (r, c) || b == (r, c))
                .map(|(i, _)| edge_var(i))
                .collect();
            // at least one
            formula.add_dimacs_clause(&incident);
            // at most one (pairwise)
            for i in 0..incident.len() {
                for j in i + 1..incident.len() {
                    formula.add_dimacs_clause(&[-incident[i], -incident[j]]);
                }
            }
        }
    }
    formula
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_boards_are_unsat() {
        assert!(!mutilated_chessboard(2).brute_force_satisfiable());
    }

    #[test]
    fn var_count_matches_edges() {
        // 2×2 board minus opposite corners: two live cells, not adjacent
        // (they are diagonal) → 0 edges… the at-least-one clauses are empty
        let f = mutilated_chessboard(2);
        assert_eq!(f.num_vars(), 0);
        assert_eq!(f.num_clauses(), 2); // two empty clauses
    }

    #[test]
    #[should_panic(expected = "odd boards")]
    fn odd_board_rejected() {
        let _ = mutilated_chessboard(3);
    }
}
