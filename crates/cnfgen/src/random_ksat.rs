//! Seeded random k-SAT.

use cnf::{Clause, CnfFormula, Lit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random k-SAT formula with `num_clauses` clauses of width
/// `k` over `num_vars` variables, deterministically from `seed`.
/// Clauses never repeat a variable.
///
/// At clause/variable ratios well above the satisfiability threshold
/// (≈ 4.27 for 3-SAT) the result is almost surely unsatisfiable; the
/// registry pins seeds whose instances were confirmed UNSAT.
///
/// # Panics
///
/// Panics if `k == 0` or `k > num_vars`.
///
/// # Examples
///
/// ```
/// let f = cnfgen::random_ksat(3, 20, 120, 42);
/// assert_eq!(f.num_clauses(), 120);
/// assert_eq!(f.num_vars(), 20);
/// // deterministic: same seed, same formula
/// assert_eq!(f, cnfgen::random_ksat(3, 20, 120, 42));
/// ```
#[must_use]
pub fn random_ksat(k: usize, num_vars: usize, num_clauses: usize, seed: u64) -> CnfFormula {
    assert!(k > 0, "clause width must be positive");
    assert!(k <= num_vars, "clause width exceeds variable count");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut formula = CnfFormula::with_vars(num_vars);
    for _ in 0..num_clauses {
        let mut vars: Vec<u32> = Vec::with_capacity(k);
        while vars.len() < k {
            let v = rng.gen_range(0..num_vars as u32);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let lits: Vec<Lit> = vars
            .into_iter()
            .map(|v| cnf::Var::new(v).lit(rng.gen_bool(0.5)))
            .collect();
        formula.add_clause(Clause::new(lits));
    }
    formula
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = random_ksat(3, 30, 100, 7);
        let b = random_ksat(3, 30, 100, 7);
        let c = random_ksat(3, 30, 100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clause_shape() {
        let f = random_ksat(3, 10, 50, 1);
        for clause in f.iter() {
            assert_eq!(clause.len(), 3);
            // no repeated variables
            let mut vars: Vec<_> = clause.lits().iter().map(|l| l.var()).collect();
            vars.sort();
            vars.dedup();
            assert_eq!(vars.len(), 3);
        }
    }

    #[test]
    fn high_ratio_small_instance_is_unsat() {
        // ratio 8 on 12 vars: overwhelmingly unsat; seed chosen and
        // pinned by this very test
        let f = random_ksat(3, 12, 96, 123);
        assert!(!f.brute_force_satisfiable());
    }

    #[test]
    #[should_panic(expected = "exceeds variable count")]
    fn rejects_k_greater_than_vars() {
        let _ = random_ksat(5, 3, 1, 0);
    }
}
