//! CNF benchmark generators.
//!
//! Every family here is a deterministic, parameterised stand-in for one
//! of the benchmark groups in Goldberg & Novikov's §6 evaluation (whose
//! industrial CNFs are not publicly archived — the substitution table
//! lives in `DESIGN.md` §3):
//!
//! | paper family | generator |
//! |---|---|
//! | Velev `pipe`/`vliw` (CPU verification) | [`pipe_cpu`] |
//! | PicoJava `exmp7x`, ISCAS `c7552` (equivalence) | [`eqv_adder`], [`eqv_shifter`] |
//! | `barrel`/`longmult`/`fifo8` (BMC) | [`bmc_lfsr`], [`bmc_counter`] |
//! | SAT-2002 `w10_*` (hard mix) | [`pigeonhole`], [`tseitin_grid`], [`mutilated_chessboard`], [`pebbling_pyramid`], [`random_ksat`] |
//!
//! The [`table_suite`], [`table3_suite`], and [`smoke_suite`] registries
//! bundle pinned instances for the table-reproduction harnesses.
//!
//! # Examples
//!
//! ```
//! let f = cnfgen::pigeonhole(4);
//! assert_eq!(f.num_vars(), 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chessboard;
mod circuits;
mod families;
mod pebbling;
mod php;
mod random_ksat;
mod tseitin_graph;

pub use chessboard::mutilated_chessboard;
pub use circuits::{
    bmc_counter, bmc_lfsr, eqv_adder, eqv_mult, eqv_shifter, pipe_cpu,
    pipe_cpu_buggy, pipe_cpu_seq,
};
pub use families::{
    smoke_suite, table3_suite, table_suite, NamedInstance, RAND3SAT_SEED_120,
    RAND3SAT_SEED_150,
};
pub use pebbling::pebbling_pyramid;
pub use php::{pigeonhole, pigeonhole_sat};
pub use random_ksat::random_ksat;
pub use tseitin_graph::tseitin_grid;
