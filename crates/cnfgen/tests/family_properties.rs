//! Property tests for the benchmark families: scaled-down instances are
//! checked against exhaustive enumeration, and the generators are
//! deterministic and structurally sane.

use cnfgen::{
    mutilated_chessboard, pebbling_pyramid, pigeonhole, pigeonhole_sat, random_ksat,
    tseitin_grid,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pigeonhole_is_unsat_and_sat_variant_is_sat(holes in 1usize..4) {
        prop_assert!(!pigeonhole(holes).brute_force_satisfiable());
        prop_assert!(pigeonhole_sat(holes).brute_force_satisfiable());
    }

    #[test]
    fn tseitin_grids_are_unsat(n in 2usize..3, m in 2usize..4) {
        // odd total charge → unsatisfiable for every grid size
        prop_assert!(!tseitin_grid(n, m).brute_force_satisfiable());
    }

    #[test]
    fn pebbling_pyramids_are_unsat(height in 1usize..4) {
        prop_assert!(!pebbling_pyramid(height).brute_force_satisfiable());
    }

    #[test]
    fn random_ksat_is_deterministic_and_well_formed(
        seed in any::<u64>(),
        vars in 4usize..10,
    ) {
        let clauses = vars * 3;
        let a = random_ksat(3, vars, clauses, seed);
        let b = random_ksat(3, vars, clauses, seed);
        prop_assert_eq!(&a, &b, "same seed must give the same formula");
        prop_assert_eq!(a.num_clauses(), clauses);
        prop_assert_eq!(a.num_vars(), vars);
        for clause in a.iter() {
            prop_assert_eq!(clause.len(), 3);
            prop_assert!(!clause.is_tautology(), "no clashing variables in a clause");
        }
    }

    #[test]
    fn random_ksat_seeds_differ(seed in any::<u64>()) {
        let a = random_ksat(3, 12, 40, seed);
        let b = random_ksat(3, 12, 40, seed.wrapping_add(1));
        // overwhelmingly likely to differ; equality would indicate the
        // seed is being ignored
        prop_assert_ne!(a, b);
    }
}

#[test]
fn chessboards_are_unsat_at_checkable_sizes() {
    assert!(!mutilated_chessboard(2).brute_force_satisfiable());
    // 4×4 has 14 live-cell edges… count vars to stay under the oracle cap
    let f = mutilated_chessboard(4);
    assert!(f.num_vars() <= 24, "{} vars", f.num_vars());
    assert!(!f.brute_force_satisfiable());
}

#[test]
fn suite_instances_have_declared_domains() {
    for inst in cnfgen::table_suite() {
        assert!(!inst.domain.is_empty());
        assert!(inst.formula.num_vars() > 0, "{}", inst.name);
    }
}
