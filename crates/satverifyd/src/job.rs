//! Job execution: turning one [`VerifyRequest`] into one [`JobResult`]
//! by running the exact pipeline `satverify check` runs —
//! [`proofver::verify_harnessed`] under a per-job [`proofver::Harness`].
//!
//! The input loaders are public so the CLI shares them: a proof file is
//! sniffed for the binary [`proofver::MAGIC`] header and decoded or
//! text-parsed accordingly.

use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

use cnf::CnfFormula;
use proofver::{
    parse_drat, verify_drat_backward_harnessed, verify_drat_stream,
    verify_harnessed, ConflictClauseProof, DratOutcome, DratProof, Harness,
    Outcome, PropagatorChoice, StreamConfig, StreamOutcome, MAGIC,
};

use crate::protocol::{ErrorCode, JobResult, VerifyRequest};

/// Loads a DIMACS CNF file.
///
/// # Errors
///
/// A message naming the path and the underlying open/parse failure.
pub fn load_formula_file(path: &str) -> Result<CnfFormula, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    cnf::parse_dimacs(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

/// Loads a proof file, auto-detecting the binary format by its magic
/// header.
///
/// # Errors
///
/// A message naming the path and the underlying open/decode failure.
pub fn load_proof_file(path: &str) -> Result<ConflictClauseProof, String> {
    let mut file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut head = [0u8; 4];
    let n = file.read(&mut head).map_err(|e| format!("{path}: {e}"))?;
    let file = File::open(path).map_err(|e| format!("cannot reopen {path}: {e}"))?;
    if n == 4 && head == MAGIC {
        proofver::decode_proof(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
    } else {
        proofver::parse_proof(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
    }
}

/// Resolves the request's formula (inline text beats path; the
/// protocol layer guarantees exactly one is present).
fn resolve_formula(request: &VerifyRequest) -> Result<CnfFormula, String> {
    match (&request.formula, &request.formula_path) {
        (Some(text), _) => {
            cnf::parse_dimacs_str(text).map_err(|e| format!("inline formula: {e}"))
        }
        (None, Some(path)) => load_formula_file(path),
        (None, None) => Err("no formula given".into()),
    }
}

fn resolve_proof(request: &VerifyRequest) -> Result<ConflictClauseProof, String> {
    match (&request.proof, &request.proof_path) {
        (Some(text), _) => {
            proofver::parse_proof_str(text).map_err(|e| format!("inline proof: {e}"))
        }
        (None, Some(path)) => load_proof_file(path),
        (None, None) => Err("no proof given".into()),
    }
}

/// Resolves the request's proof as standard DRAT. Inline proofs are
/// text DRAT (the wire is newline-JSON, so raw binary cannot travel
/// inline); `proof_path` files may use either encoding.
fn resolve_drat(request: &VerifyRequest) -> Result<DratProof, String> {
    match (&request.proof, &request.proof_path) {
        (Some(text), _) => {
            parse_drat(text.as_bytes()).map_err(|e| format!("inline proof: {e}"))
        }
        (None, Some(path)) => {
            let bytes =
                std::fs::read(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            parse_drat(&bytes).map_err(|e| format!("{path}: {e}"))
        }
        (None, None) => Err("no proof given".into()),
    }
}

/// Runs one verification job under `harness` and maps the three-way
/// [`Outcome`] onto the wire-level [`JobResult`]. Latency fields are
/// filled in by the server (it owns the submission timestamp).
///
/// # Errors
///
/// `(ErrorCode::InvalidInput, message)` when the formula or proof
/// cannot be loaded or parsed, or the mode string is unknown.
pub fn execute(
    request: &VerifyRequest,
    harness: &Harness,
) -> Result<JobResult, (ErrorCode, String)> {
    let invalid = |msg: String| (ErrorCode::InvalidInput, msg);
    let mode = request.check_mode().map_err(invalid)?;
    if request.stream {
        if !request.is_drat().map_err(invalid)? {
            return Err(invalid(
                "stream requires proof_format \"drat\"".into(),
            ));
        }
        return execute_stream(request, harness);
    }
    if request.is_drat().map_err(invalid)? {
        return execute_drat(request, harness);
    }
    let formula = resolve_formula(request).map_err(invalid)?;
    let proof = resolve_proof(request).map_err(invalid)?;
    let steps_total = proof.len() as u64;
    let mut result = JobResult {
        id: request.id.clone(),
        steps_total: Some(steps_total),
        ..JobResult::default()
    };
    match verify_harnessed(&formula, &proof, mode, harness) {
        Outcome::Verified(v) => {
            result.outcome = "verified".into();
            result.steps_checked = Some(v.report.num_checked as u64);
            result.propagations = Some(v.report.propagations);
        }
        Outcome::Rejected { step, error } => {
            result.outcome = "rejected".into();
            result.rejected_step = step.map(|s| s as u64);
            result.detail = Some(error.to_string());
        }
        Outcome::Exhausted { reason, progress, checkpoint: _ } => {
            result.outcome = "exhausted".into();
            result.exhaust_reason = Some(reason.as_str().to_string());
            result.steps_checked = Some(progress.steps_checked as u64);
            result.propagations = Some(progress.propagations);
        }
    }
    Ok(result)
}

/// The DRAT branch of [`execute`]: parse the standard-format proof and
/// check it backward with core-first marking. The wire result carries
/// the same three-way outcome; `steps_total` counts addition steps and
/// `steps_checked` the marked ones.
fn execute_drat(
    request: &VerifyRequest,
    harness: &Harness,
) -> Result<JobResult, (ErrorCode, String)> {
    let invalid = |msg: String| (ErrorCode::InvalidInput, msg);
    let formula = resolve_formula(request).map_err(invalid)?;
    let proof = resolve_drat(request).map_err(invalid)?;
    let mut result = JobResult {
        id: request.id.clone(),
        steps_total: Some(proof.num_adds() as u64),
        ..JobResult::default()
    };
    match verify_drat_backward_harnessed(
        &formula,
        &proof,
        harness,
        PropagatorChoice::Watched,
    ) {
        DratOutcome::Verified(v) => {
            result.outcome = "verified".into();
            result.steps_checked = Some(v.num_checked as u64);
            result.propagations = Some(v.propagations);
        }
        DratOutcome::Rejected { step, error } => {
            result.outcome = "rejected".into();
            result.rejected_step = step.map(|s| s as u64);
            result.detail = Some(error.to_string());
        }
        DratOutcome::Exhausted { reason, progress } => {
            result.outcome = "exhausted".into();
            result.exhaust_reason = Some(reason.as_str().to_string());
            result.steps_checked = Some(progress.steps_checked as u64);
            result.propagations = Some(progress.propagations);
        }
    }
    Ok(result)
}

/// The streaming branch of [`execute`]: check a server-local binary
/// DRAT file with the windowed bounded-memory verifier. The budget's
/// `max_memory_bytes` (request or server default) becomes the streaming
/// residency cap; other budget fields bound the run as usual. Inline
/// proofs cannot stream (the wire is newline-JSON, and the point of
/// streaming is not holding the proof in memory), so `proof_path` is
/// required.
fn execute_stream(
    request: &VerifyRequest,
    harness: &Harness,
) -> Result<JobResult, (ErrorCode, String)> {
    let invalid = |msg: String| (ErrorCode::InvalidInput, msg);
    let Some(path) = &request.proof_path else {
        return Err(invalid(
            "stream requires `proof_path` (a server-local binary DRAT \
             file); inline proofs cannot stream"
                .into(),
        ));
    };
    let formula = resolve_formula(request).map_err(invalid)?;
    let mut config = StreamConfig::default();
    if harness.budget.max_arena_bytes != u64::MAX {
        config.memory_budget = harness.budget.max_arena_bytes;
    }
    let mut result = JobResult {
        id: request.id.clone(),
        ..JobResult::default()
    };
    match verify_drat_stream(
        &formula,
        Path::new(path),
        harness,
        &config,
        PropagatorChoice::Watched,
        None,
        None,
    ) {
        StreamOutcome::Verified(v) => {
            result.outcome = "verified".into();
            result.steps_total = Some(v.total_adds);
            result.steps_checked = Some(v.num_checked as u64);
            result.propagations = Some(v.propagations);
        }
        StreamOutcome::Rejected { step, error } => {
            result.outcome = "rejected".into();
            result.rejected_step = step.map(|s| s as u64);
            result.detail = Some(error.to_string());
        }
        StreamOutcome::Exhausted { reason, progress, checkpointed: _ } => {
            result.outcome = "exhausted".into();
            result.exhaust_reason = Some(reason.as_str().to_string());
            result.steps_checked = Some(progress.steps_checked as u64);
            result.propagations = Some(progress.propagations);
        }
        StreamOutcome::Failed(e) => {
            return Err(invalid(format!("streaming check failed: {e}")));
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proofver::Budget;

    const XOR_SQUARE: &str = "p cnf 2 4\n1 2 0\n-1 -2 0\n1 -2 0\n-1 2 0\n";
    const XOR_PROOF: &str = "2 0\n-2 0\n0\n";

    fn inline(formula: &str, proof: &str) -> VerifyRequest {
        VerifyRequest {
            formula: Some(formula.into()),
            proof: Some(proof.into()),
            ..VerifyRequest::default()
        }
    }

    #[test]
    fn good_proof_verifies() {
        let result = execute(&inline(XOR_SQUARE, XOR_PROOF), &Harness::default())
            .expect("valid inputs");
        assert_eq!(result.outcome, "verified");
        assert_eq!(result.steps_total, Some(3), "two cuts plus the refutation");
    }

    #[test]
    fn bogus_proof_rejects_with_step() {
        let result = execute(
            &inline(XOR_SQUARE, "1 2 0\n0\n"),
            &Harness::default(),
        )
        .expect("valid inputs");
        assert_eq!(result.outcome, "rejected");
        assert!(result.detail.is_some());
    }

    #[test]
    fn starved_budget_exhausts_never_verdicts() {
        let harness =
            Harness::with_budget(Budget::unlimited().max_propagations(1));
        let result =
            execute(&inline(XOR_SQUARE, XOR_PROOF), &harness).expect("valid inputs");
        assert_eq!(result.outcome, "exhausted");
        assert_eq!(result.exhaust_reason.as_deref(), Some("propagations"));
    }

    fn inline_drat(formula: &str, proof: &str) -> VerifyRequest {
        VerifyRequest {
            proof_format: Some("drat".into()),
            ..inline(formula, proof)
        }
    }

    #[test]
    fn drat_jobs_run_the_backward_checker() {
        // a deletion step would be rejected by the native parser: this
        // exercises the DRAT routing end to end
        let result = execute(
            &inline_drat(XOR_SQUARE, "2 0\nd 1 2 0\n-2 0\n0\n"),
            &Harness::default(),
        )
        .expect("valid inputs");
        assert_eq!(result.outcome, "verified");
        assert_eq!(result.steps_total, Some(3), "additions only");
    }

    #[test]
    fn drat_jobs_reject_bad_proofs_and_malformed_input() {
        let rejected = execute(
            &inline_drat(XOR_SQUARE, "5 6 0\n"),
            &Harness::default(),
        )
        .expect("valid inputs");
        assert_eq!(rejected.outcome, "rejected");
        let malformed = execute(
            &inline_drat(XOR_SQUARE, "2 0\nbogus 0\n"),
            &Harness::default(),
        );
        assert!(matches!(malformed, Err((ErrorCode::InvalidInput, _))));
        let bad_format = execute(
            &VerifyRequest {
                proof_format: Some("lisp".into()),
                ..inline(XOR_SQUARE, XOR_PROOF)
            },
            &Harness::default(),
        );
        assert!(matches!(bad_format, Err((ErrorCode::InvalidInput, _))));
    }

    #[test]
    fn drat_jobs_respect_budgets() {
        let harness =
            Harness::with_budget(Budget::unlimited().max_propagations(1));
        let result = execute(
            &inline_drat(XOR_SQUARE, "2 0\n-2 0\n0\n"),
            &harness,
        )
        .expect("valid inputs");
        assert_eq!(result.outcome, "exhausted");
        assert_eq!(result.exhaust_reason.as_deref(), Some("propagations"));
    }

    #[test]
    fn garbage_inputs_are_invalid_not_verdicts() {
        let bad_formula = execute(&inline("p cnf x y\n", "0\n"), &Harness::default());
        assert!(matches!(bad_formula, Err((ErrorCode::InvalidInput, _))));
        let bad_proof = execute(&inline(XOR_SQUARE, "not a proof"), &Harness::default());
        assert!(matches!(bad_proof, Err((ErrorCode::InvalidInput, _))));
        let missing_file = execute(
            &VerifyRequest {
                formula_path: Some("/nonexistent/x.cnf".into()),
                proof: Some("0\n".into()),
                ..VerifyRequest::default()
            },
            &Harness::default(),
        );
        assert!(matches!(missing_file, Err((ErrorCode::InvalidInput, _))));
    }
}
