//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One JSON document per line in each direction. Requests carry an
//! `"op"` discriminator; responses mirror it. Responses to pipelined
//! `verify` requests arrive in *completion* order and are matched to
//! their request by the client-chosen `id` field. The full schema is
//! specified in `docs/PROTOCOL.md`; [`PROTOCOL_VERSION`] is bumped on
//! every incompatible change.

use std::time::Duration;

use obs::json::Json;
use proofver::{Budget, CheckMode};

/// Version of the wire protocol implemented by this build.
pub const PROTOCOL_VERSION: u64 = 1;

/// Machine-readable error codes carried by `op:"error"` responses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The job queue is full; resubmit later. The job was **not**
    /// accepted — admission control rejects instead of buffering.
    Overloaded,
    /// The server is draining and admits no new jobs.
    Draining,
    /// The request line was not valid JSON or is missing required
    /// fields.
    BadRequest,
    /// The formula or proof could not be loaded or parsed.
    InvalidInput,
    /// The job crashed inside the server (a bug — the worker survived).
    Internal,
}

impl ErrorCode {
    /// Stable wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Draining => "draining",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::InvalidInput => "invalid-input",
            ErrorCode::Internal => "internal",
        }
    }

    fn from_str(text: &str) -> Option<ErrorCode> {
        Some(match text {
            "overloaded" => ErrorCode::Overloaded,
            "draining" => ErrorCode::Draining,
            "bad-request" => ErrorCode::BadRequest,
            "invalid-input" => ErrorCode::InvalidInput,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// Resource limits requested for one job, mapped onto
/// [`proofver::Budget`]. Absent fields mean "unlimited".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Cap on literals propagated.
    pub max_propagations: Option<u64>,
    /// Cap on watched-clause look-ups.
    pub max_clause_visits: Option<u64>,
    /// Cap on clause-arena bytes.
    pub max_memory_bytes: Option<u64>,
    /// Wall-clock limit in milliseconds.
    pub timeout_ms: Option<u64>,
}

impl BudgetSpec {
    /// The request's limits merged over `base` (the server default):
    /// any field the request sets wins.
    #[must_use]
    pub fn resolve(&self, base: &Budget) -> Budget {
        let mut budget = base.clone();
        if let Some(n) = self.max_propagations {
            budget = budget.max_propagations(n);
        }
        if let Some(n) = self.max_clause_visits {
            budget = budget.max_clause_visits(n);
        }
        if let Some(n) = self.max_memory_bytes {
            budget = budget.max_arena_bytes(n);
        }
        if let Some(ms) = self.timeout_ms {
            budget = budget.timeout(Duration::from_millis(ms));
        }
        budget
    }

    /// Whether any limit is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == BudgetSpec::default()
    }

    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        if let Some(n) = self.max_propagations {
            push_u64(&mut obj, "max_propagations", n);
        }
        if let Some(n) = self.max_clause_visits {
            push_u64(&mut obj, "max_clause_visits", n);
        }
        if let Some(n) = self.max_memory_bytes {
            push_u64(&mut obj, "max_memory_bytes", n);
        }
        if let Some(n) = self.timeout_ms {
            push_u64(&mut obj, "timeout_ms", n);
        }
        obj
    }

    fn from_json(doc: &Json) -> Result<BudgetSpec, String> {
        let field = |key: &str| -> Result<Option<u64>, String> {
            match doc.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_int()
                    .and_then(|n| u64::try_from(n).ok())
                    .map(Some)
                    .ok_or_else(|| {
                        format!("budget field `{key}` is not a non-negative integer")
                    }),
            }
        };
        Ok(BudgetSpec {
            max_propagations: field("max_propagations")?,
            max_clause_visits: field("max_clause_visits")?,
            max_memory_bytes: field("max_memory_bytes")?,
            timeout_ms: field("timeout_ms")?,
        })
    }
}

/// One verification job: a formula and a proof, each inline or by
/// server-local path, plus check mode and budget.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerifyRequest {
    /// Client-chosen identifier, echoed verbatim in the response.
    /// Responses arrive in completion order; pipelining clients match
    /// them to requests by this field.
    pub id: Option<String>,
    /// Inline DIMACS CNF text.
    pub formula: Option<String>,
    /// Server-local path to a DIMACS CNF file.
    pub formula_path: Option<String>,
    /// Inline proof text (one conflict clause per line, `0`-terminated).
    pub proof: Option<String>,
    /// Server-local path to a text or binary proof file.
    pub proof_path: Option<String>,
    /// Check mode: `marked-only` (default), `all`, or `all-forward`.
    pub mode: Option<String>,
    /// Proof format: `native` (default, conflict-clause proofs) or
    /// `drat` (standard DRAT, checked backward). Additive field:
    /// absent means `native`, so old clients are unaffected.
    pub proof_format: Option<String>,
    /// Check the proof with the windowed streaming verifier (requires
    /// `proof_format: "drat"` and a server-local `proof_path` to a
    /// binary DRAT file; the budget's `max_memory_bytes` becomes the
    /// streaming residency cap). Additive field: absent means `false`,
    /// so old clients are unaffected.
    pub stream: bool,
    /// Per-job resource limits.
    pub budget: BudgetSpec,
}

impl VerifyRequest {
    /// The requested [`CheckMode`], or an error naming the bad value.
    ///
    /// # Errors
    ///
    /// A message for unknown mode strings.
    pub fn check_mode(&self) -> Result<CheckMode, String> {
        match self.mode.as_deref() {
            None | Some("marked-only") => Ok(CheckMode::MarkedOnly),
            Some("all") => Ok(CheckMode::All),
            Some("all-forward") => Ok(CheckMode::AllForward),
            Some(other) => Err(format!(
                "unknown mode {other:?} (marked-only|all|all-forward)"
            )),
        }
    }

    /// Whether the job's proof is standard DRAT (`true`) or native
    /// (`false`), or an error naming the bad value.
    ///
    /// # Errors
    ///
    /// A message for unknown format strings.
    pub fn is_drat(&self) -> Result<bool, String> {
        match self.proof_format.as_deref() {
            None | Some("native") => Ok(false),
            Some("drat") => Ok(true),
            Some(other) => {
                Err(format!("unknown proof_format {other:?} (native|drat)"))
            }
        }
    }

    /// Parses and validates one verify body — a full `verify` request
    /// document or one entry of a `batch` request's `jobs` array (an
    /// `"op"` field, if present, is ignored).
    ///
    /// # Errors
    ///
    /// A human-readable message for missing/conflicting inputs or
    /// unknown mode/format values.
    pub fn from_json(doc: &Json) -> Result<VerifyRequest, String> {
        let text =
            |key: &str| doc.get(key).and_then(Json::as_str).map(str::to_string);
        let request = VerifyRequest {
            id: text("id"),
            formula: text("formula"),
            formula_path: text("formula_path"),
            proof: text("proof"),
            proof_path: text("proof_path"),
            mode: text("mode"),
            proof_format: text("proof_format"),
            stream: matches!(doc.get("stream"), Some(Json::Bool(true))),
            budget: match doc.get("budget") {
                Some(spec) => BudgetSpec::from_json(spec)?,
                None => BudgetSpec::default(),
            },
        };
        if request.formula.is_none() && request.formula_path.is_none() {
            return Err("verify needs `formula` or `formula_path`".into());
        }
        if request.formula.is_some() && request.formula_path.is_some() {
            return Err("give `formula` or `formula_path`, not both".into());
        }
        if request.proof.is_none() && request.proof_path.is_none() {
            return Err("verify needs `proof` or `proof_path`".into());
        }
        if request.proof.is_some() && request.proof_path.is_some() {
            return Err("give `proof` or `proof_path`, not both".into());
        }
        request.check_mode()?;
        request.is_drat()?;
        if request.is_drat() == Ok(true) && request.mode.is_some() {
            return Err("drat jobs are checked backward; drop `mode`".into());
        }
        Ok(request)
    }

    /// Parses one JSONL line as a verify body (see
    /// [`VerifyRequest::from_json`]) — the format `satverify client
    /// batch <file>` reads.
    ///
    /// # Errors
    ///
    /// A message for invalid JSON or an invalid body.
    pub fn from_json_line(line: &str) -> Result<VerifyRequest, String> {
        let doc =
            obs::json::parse(line).map_err(|e| format!("not valid JSON: {e}"))?;
        if let Some(op) = doc.get("op").and_then(Json::as_str) {
            if op != "verify" {
                return Err(format!("job line has op {op:?}, expected a verify body"));
            }
        }
        VerifyRequest::from_json(&doc)
    }
}

/// Serialises one verify body, optionally with the `"op":"verify"`
/// discriminator (full requests carry it; `batch` jobs do not).
fn verify_to_json(v: &VerifyRequest, with_op: bool) -> Json {
    let mut obj = Json::object();
    if with_op {
        obj.push("op", "verify");
    }
    if let Some(id) = &v.id {
        obj.push("id", id.as_str());
    }
    if let Some(text) = &v.formula {
        obj.push("formula", text.as_str());
    }
    if let Some(path) = &v.formula_path {
        obj.push("formula_path", path.as_str());
    }
    if let Some(text) = &v.proof {
        obj.push("proof", text.as_str());
    }
    if let Some(path) = &v.proof_path {
        obj.push("proof_path", path.as_str());
    }
    if let Some(mode) = &v.mode {
        obj.push("mode", mode.as_str());
    }
    if let Some(format) = &v.proof_format {
        obj.push("proof_format", format.as_str());
    }
    if v.stream {
        obj.push("stream", true);
    }
    if !v.budget.is_empty() {
        obj.push("budget", v.budget.to_json());
    }
    obj
}

/// A client-to-server message.
// `Verify` dwarfs the dataless control variants, but requests are
// transient (parsed, dispatched, dropped) and never stored in bulk, so
// boxing would buy nothing and cost every construction site.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit a verification job.
    Verify(VerifyRequest),
    /// Submit several verification jobs in one line. Each job is
    /// admitted independently (same admission control and fair queue as
    /// `verify`) and answered by its own response, streamed back in
    /// completion order. Additive op: old servers answer `bad-request`,
    /// which a client can detect and fall back to pipelined `verify`.
    Batch(Vec<VerifyRequest>),
    /// Ask for server statistics.
    Stats,
    /// Ask for the metrics registry in Prometheus text exposition.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Begin a graceful drain: stop admitting, finish in-flight and
    /// queued jobs, then exit.
    Shutdown,
}

impl Request {
    /// A `verify` request with inline formula and proof text.
    #[must_use]
    pub fn verify_inline(formula: &str, proof: &str) -> Request {
        Request::Verify(VerifyRequest {
            formula: Some(formula.to_string()),
            proof: Some(proof.to_string()),
            ..VerifyRequest::default()
        })
    }

    /// Serialises to one compact JSON line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        self.to_json().to_compact_string()
    }

    /// The JSON document for this request.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Request::Verify(v) => verify_to_json(v, true),
            Request::Batch(jobs) => {
                let mut obj = Json::object();
                obj.push("op", "batch");
                obj.push(
                    "jobs",
                    Json::Array(
                        jobs.iter().map(|v| verify_to_json(v, false)).collect(),
                    ),
                );
                obj
            }
            Request::Stats => Json::object_from([("op", Json::from("stats"))]),
            Request::Metrics => Json::object_from([("op", Json::from("metrics"))]),
            Request::Ping => Json::object_from([("op", Json::from("ping"))]),
            Request::Shutdown => {
                Json::object_from([("op", Json::from("shutdown"))])
            }
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A human-readable message; the server answers these with
    /// [`ErrorCode::BadRequest`].
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = obs::json::parse(line).map_err(|e| format!("not valid JSON: {e}"))?;
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field `op`")?;
        match op {
            "verify" => Ok(Request::Verify(VerifyRequest::from_json(&doc)?)),
            "batch" => {
                let jobs = doc
                    .get("jobs")
                    .and_then(Json::as_array)
                    .ok_or("batch needs a `jobs` array")?;
                if jobs.is_empty() {
                    return Err("batch needs a non-empty `jobs` array".into());
                }
                // strict whole-line validation: one malformed job fails
                // the entire batch before anything is admitted, so a
                // batch never half-runs
                jobs.iter()
                    .enumerate()
                    .map(|(i, job)| {
                        VerifyRequest::from_json(job)
                            .map_err(|e| format!("batch job {i}: {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(Request::Batch)
            }
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// The server's answer to one `verify` job.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobResult {
    /// The request's `id`, echoed back.
    pub id: Option<String>,
    /// `"verified"`, `"rejected"`, or `"exhausted"` — never a verdict
    /// for an exhausted run.
    pub outcome: String,
    /// Conflict-clause checks completed.
    pub steps_checked: Option<u64>,
    /// Conflict clauses in the proof.
    pub steps_total: Option<u64>,
    /// Which limit stopped an exhausted run.
    pub exhaust_reason: Option<String>,
    /// Zero-based proof index of the failing clause of a rejected run.
    pub rejected_step: Option<u64>,
    /// Human-readable detail (the verification error, for rejections).
    pub detail: Option<String>,
    /// Literals propagated while checking.
    pub propagations: Option<u64>,
    /// Wall-clock job latency in milliseconds (queue wait + check).
    pub latency_ms: Option<u64>,
}

/// A five-number latency summary in microseconds. Percentiles are
/// nearest-rank estimates from the server's power-of-two-bucket
/// histograms: each is the containing bucket's upper bound (within 2×
/// of the true value, never an underestimate) clamped to the
/// exactly-tracked `[min, max]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Estimated median, µs.
    pub p50: u64,
    /// Estimated 90th percentile, µs.
    pub p90: u64,
    /// Estimated 99th percentile, µs.
    pub p99: u64,
    /// Exact smallest sample, µs.
    pub min: u64,
    /// Exact largest sample, µs.
    pub max: u64,
}

impl LatencySummary {
    /// Summarises a histogram snapshot.
    #[must_use]
    pub fn from_snapshot(h: &obs::metrics::HistogramSnapshot) -> LatencySummary {
        LatencySummary {
            count: h.count,
            p50: h.p50(),
            p90: h.p90(),
            p99: h.p99(),
            min: h.min,
            max: h.max,
        }
    }

    fn to_json(self) -> Json {
        let mut obj = Json::object();
        push_u64(&mut obj, "count", self.count);
        push_u64(&mut obj, "p50", self.p50);
        push_u64(&mut obj, "p90", self.p90);
        push_u64(&mut obj, "p99", self.p99);
        push_u64(&mut obj, "min", self.min);
        push_u64(&mut obj, "max", self.max);
        obj
    }

    fn from_json(doc: &Json) -> LatencySummary {
        let get = |key: &str| {
            doc.get(key)
                .and_then(Json::as_int)
                .and_then(|n| u64::try_from(n).ok())
                .unwrap_or(0)
        };
        LatencySummary {
            count: get("count"),
            p50: get("p50"),
            p90: get("p90"),
            p99: get("p99"),
            min: get("min"),
            max: get("max"),
        }
    }
}

/// The server's statistics reply: per-instance counters plus the
/// global `obs` metrics snapshot relevant to serving.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// `(name, value)` for each admission/outcome counter.
    pub counters: Vec<(String, u64)>,
    /// Jobs waiting in the queue right now.
    pub queue_depth: u64,
    /// Jobs being checked right now.
    pub in_flight: u64,
    /// `(upper_bound_ms, count)` buckets of the job latency histogram.
    pub latency_buckets: Vec<(u64, u64)>,
    /// Named µs latency summaries: `queue_wait`, `verify`, `e2e`,
    /// `cache_hit`. Absent entries (an older server) parse as an empty
    /// vec.
    pub latency_us: Vec<(String, LatencySummary)>,
    /// Whether the server has begun draining. Additive field: absent
    /// (an older server) parses as `false`. The router's health checker
    /// reads this to stop routing new jobs at a draining backend.
    pub draining: bool,
}

impl StatsReply {
    /// The value of counter `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The µs latency summary called `name` (`queue_wait`, `verify`,
    /// `e2e`), if the server sent one.
    #[must_use]
    pub fn latency(&self, name: &str) -> Option<&LatencySummary> {
        self.latency_us.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// A completed `verify` job.
    Result(JobResult),
    /// An admission or processing error. `id` is present when the error
    /// belongs to an identifiable `verify` request.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// The offending request's `id`, when known.
        id: Option<String>,
        /// Human-readable detail.
        message: String,
    },
    /// Statistics snapshot.
    Stats(StatsReply),
    /// The metrics registry in Prometheus text exposition format.
    Metrics {
        /// The exposition text (multi-line; newline-escaped on the wire).
        text: String,
    },
    /// Answer to `ping`.
    Pong,
    /// Acknowledgement that the drain has begun.
    ShuttingDown,
}

impl Response {
    /// Serialises to one compact JSON line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        self.to_json().to_compact_string()
    }

    /// The JSON document for this response.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Response::Result(r) => {
                let mut obj = Json::object();
                obj.push("op", "result");
                if let Some(id) = &r.id {
                    obj.push("id", id.as_str());
                }
                obj.push("outcome", r.outcome.as_str());
                if let Some(n) = r.steps_checked {
                    push_u64(&mut obj, "steps_checked", n);
                }
                if let Some(n) = r.steps_total {
                    push_u64(&mut obj, "steps_total", n);
                }
                if let Some(reason) = &r.exhaust_reason {
                    obj.push("exhaust_reason", reason.as_str());
                }
                if let Some(step) = r.rejected_step {
                    push_u64(&mut obj, "rejected_step", step);
                }
                if let Some(detail) = &r.detail {
                    obj.push("detail", detail.as_str());
                }
                if let Some(n) = r.propagations {
                    push_u64(&mut obj, "propagations", n);
                }
                if let Some(ms) = r.latency_ms {
                    push_u64(&mut obj, "latency_ms", ms);
                }
                obj
            }
            Response::Error { code, id, message } => {
                let mut obj = Json::object();
                obj.push("op", "error");
                if let Some(id) = id {
                    obj.push("id", id.as_str());
                }
                obj.push("code", code.as_str());
                obj.push("message", message.as_str());
                obj
            }
            Response::Stats(s) => {
                let mut obj = Json::object();
                obj.push("op", "stats");
                push_u64(&mut obj, "protocol_version", PROTOCOL_VERSION);
                let mut counters = Json::object();
                for (name, value) in &s.counters {
                    push_u64(&mut counters, name, *value);
                }
                obj.push("counters", counters);
                push_u64(&mut obj, "queue_depth", s.queue_depth);
                push_u64(&mut obj, "in_flight", s.in_flight);
                obj.push(
                    "latency_ms",
                    Json::Array(
                        s.latency_buckets
                            .iter()
                            .map(|&(le, n)| {
                                let mut b = Json::object();
                                push_u64(&mut b, "le", le);
                                push_u64(&mut b, "count", n);
                                b
                            })
                            .collect(),
                    ),
                );
                let mut latency_us = Json::object();
                for (name, summary) in &s.latency_us {
                    latency_us.push(name.as_str(), summary.to_json());
                }
                obj.push("latency_us", latency_us);
                obj.push("draining", Json::Bool(s.draining));
                obj
            }
            Response::Metrics { text } => Json::object_from([
                ("op", Json::from("metrics")),
                ("text", Json::from(text.as_str())),
            ]),
            Response::Pong => Json::object_from([("op", Json::from("pong"))]),
            Response::ShuttingDown => Json::object_from([
                ("op", Json::from("shutdown")),
                ("draining", Json::Bool(true)),
            ]),
        }
    }

    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed lines.
    pub fn parse(line: &str) -> Result<Response, String> {
        let doc = obs::json::parse(line).map_err(|e| format!("not valid JSON: {e}"))?;
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field `op`")?;
        let get_u64 = |doc: &Json, key: &str| {
            doc.get(key).and_then(Json::as_int).and_then(|n| u64::try_from(n).ok())
        };
        match op {
            "result" => Ok(Response::Result(JobResult {
                id: doc.get("id").and_then(Json::as_str).map(str::to_string),
                outcome: doc
                    .get("outcome")
                    .and_then(Json::as_str)
                    .ok_or("result without `outcome`")?
                    .to_string(),
                steps_checked: get_u64(&doc, "steps_checked"),
                steps_total: get_u64(&doc, "steps_total"),
                exhaust_reason: doc
                    .get("exhaust_reason")
                    .and_then(Json::as_str)
                    .map(str::to_string),
                rejected_step: get_u64(&doc, "rejected_step"),
                detail: doc.get("detail").and_then(Json::as_str).map(str::to_string),
                propagations: get_u64(&doc, "propagations"),
                latency_ms: get_u64(&doc, "latency_ms"),
            })),
            "error" => Ok(Response::Error {
                code: doc
                    .get("code")
                    .and_then(Json::as_str)
                    .and_then(ErrorCode::from_str)
                    .ok_or("error without a known `code`")?,
                id: doc.get("id").and_then(Json::as_str).map(str::to_string),
                message: doc
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            }),
            "stats" => {
                let counters = match doc.get("counters") {
                    Some(Json::Object(pairs)) => pairs
                        .iter()
                        .filter_map(|(k, v)| {
                            v.as_int()
                                .and_then(|n| u64::try_from(n).ok())
                                .map(|n| (k.clone(), n))
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                let latency_buckets = doc
                    .get("latency_ms")
                    .and_then(Json::as_array)
                    .map(|buckets| {
                        buckets
                            .iter()
                            .filter_map(|b| {
                                Some((get_u64(b, "le")?, get_u64(b, "count")?))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                // Forward-compat: an older server omits `latency_us`
                // entirely; a newer one may add summaries (or fields
                // inside a summary) this build doesn't know — both parse.
                let latency_us = match doc.get("latency_us") {
                    Some(Json::Object(pairs)) => pairs
                        .iter()
                        .map(|(k, v)| (k.clone(), LatencySummary::from_json(v)))
                        .collect(),
                    _ => Vec::new(),
                };
                Ok(Response::Stats(StatsReply {
                    counters,
                    queue_depth: get_u64(&doc, "queue_depth").unwrap_or(0),
                    in_flight: get_u64(&doc, "in_flight").unwrap_or(0),
                    latency_buckets,
                    latency_us,
                    draining: matches!(doc.get("draining"), Some(Json::Bool(true))),
                }))
            }
            "metrics" => Ok(Response::Metrics {
                text: doc
                    .get("text")
                    .and_then(Json::as_str)
                    .ok_or("metrics without `text`")?
                    .to_string(),
            }),
            "pong" => Ok(Response::Pong),
            "shutdown" => Ok(Response::ShuttingDown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// Pushes a `u64` as a JSON integer, saturating at `i64::MAX` (the JSON
/// model keeps integers in an `i64`).
fn push_u64(obj: &mut Json, key: &str, value: u64) {
    obj.push(key, Json::Int(i64::try_from(value).unwrap_or(i64::MAX)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_request_roundtrips() {
        let request = Request::Verify(VerifyRequest {
            id: Some("job-7".into()),
            formula: Some("p cnf 1 1\n1 0\n".into()),
            proof: Some("0\n".into()),
            mode: Some("all".into()),
            budget: BudgetSpec {
                max_propagations: Some(1000),
                timeout_ms: Some(50),
                ..BudgetSpec::default()
            },
            ..VerifyRequest::default()
        });
        let line = request.to_line();
        assert!(!line.contains('\n'), "one line per message");
        assert_eq!(Request::parse(&line), Ok(request));
    }

    #[test]
    fn proof_format_roundtrips_and_is_validated() {
        let request = Request::Verify(VerifyRequest {
            formula: Some("p cnf 1 1\n1 0\n".into()),
            proof: Some("0\n".into()),
            proof_format: Some("drat".into()),
            ..VerifyRequest::default()
        });
        let line = request.to_line();
        assert!(line.contains("proof_format"));
        assert_eq!(Request::parse(&line), Ok(request));
        // unknown formats are a parse-time bad request
        assert!(Request::parse(
            r#"{"op":"verify","formula":"p cnf 0 0\n","proof":"0\n","proof_format":"lisp"}"#
        )
        .is_err());
        // backward checking has no mode knob
        assert!(Request::parse(
            r#"{"op":"verify","formula":"p cnf 0 0\n","proof":"0\n","proof_format":"drat","mode":"all"}"#
        )
        .is_err());
        // absent field still parses (old clients)
        assert!(Request::parse(
            r#"{"op":"verify","formula":"p cnf 0 0\n","proof":"0\n"}"#
        )
        .is_ok());
    }

    #[test]
    fn control_requests_roundtrip() {
        for request in
            [Request::Stats, Request::Metrics, Request::Ping, Request::Shutdown]
        {
            assert_eq!(Request::parse(&request.to_line()), Ok(request));
        }
    }

    #[test]
    fn verify_without_formula_or_proof_is_rejected() {
        assert!(Request::parse(r#"{"op":"verify","proof":"0\n"}"#).is_err());
        assert!(Request::parse(r#"{"op":"verify","formula":"p cnf 0 0\n"}"#).is_err());
        let both = r#"{"op":"verify","formula":"x","formula_path":"y","proof":"0"}"#;
        assert!(Request::parse(both).is_err());
        let bad_mode =
            r#"{"op":"verify","formula":"x","proof":"0","mode":"sideways"}"#;
        assert!(Request::parse(bad_mode).is_err());
    }

    #[test]
    fn result_and_error_responses_roundtrip() {
        let result = Response::Result(JobResult {
            id: Some("a".into()),
            outcome: "exhausted".into(),
            steps_checked: Some(3),
            steps_total: Some(9),
            exhaust_reason: Some("propagations".into()),
            latency_ms: Some(12),
            ..JobResult::default()
        });
        assert_eq!(Response::parse(&result.to_line()), Ok(result));
        let error = Response::Error {
            code: ErrorCode::Overloaded,
            id: None,
            message: "queue full (capacity 4)".into(),
        };
        assert_eq!(Response::parse(&error.to_line()), Ok(error));
    }

    #[test]
    fn stats_response_roundtrips() {
        let stats = Response::Stats(StatsReply {
            counters: vec![("submitted".into(), 10), ("verified".into(), 7)],
            queue_depth: 2,
            in_flight: 1,
            latency_buckets: vec![(1, 3), (7, 4)],
            latency_us: vec![
                (
                    "queue_wait".into(),
                    LatencySummary {
                        count: 7,
                        p50: 120,
                        p90: 500,
                        p99: 900,
                        min: 80,
                        max: 950,
                    },
                ),
                ("e2e".into(), LatencySummary { count: 7, ..LatencySummary::default() }),
            ],
            draining: true,
        });
        assert_eq!(Response::parse(&stats.to_line()), Ok(stats));
        // absent draining flag (older server) parses as false
        let old = r#"{"op":"stats","counters":{},"queue_depth":0,"in_flight":0,"latency_ms":[]}"#;
        let Ok(Response::Stats(reply)) = Response::parse(old) else {
            panic!("old-server stats must parse");
        };
        assert!(!reply.draining);
    }

    #[test]
    fn batch_request_roundtrips() {
        let batch = Request::Batch(vec![
            VerifyRequest {
                id: Some("a".into()),
                formula: Some("p cnf 1 1\n1 0\n".into()),
                proof: Some("0\n".into()),
                ..VerifyRequest::default()
            },
            VerifyRequest {
                id: Some("b".into()),
                formula: Some("p cnf 1 1\n-1 0\n".into()),
                proof: Some("0\n".into()),
                budget: BudgetSpec {
                    max_propagations: Some(9),
                    ..BudgetSpec::default()
                },
                ..VerifyRequest::default()
            },
        ]);
        let line = batch.to_line();
        assert!(!line.contains('\n'), "one line per message");
        assert_eq!(Request::parse(&line), Ok(batch));
    }

    #[test]
    fn batch_validation_is_whole_line_strict() {
        // empty jobs array
        assert!(Request::parse(r#"{"op":"batch","jobs":[]}"#).is_err());
        // missing jobs entirely
        assert!(Request::parse(r#"{"op":"batch"}"#).is_err());
        // one malformed job (no proof) fails the whole batch, naming it
        let half_bad = r#"{"op":"batch","jobs":[{"formula":"p cnf 0 0\n","proof":"0\n"},{"formula":"p cnf 0 0\n"}]}"#;
        let err = Request::parse(half_bad).expect_err("half-bad batch rejected");
        assert!(err.contains("batch job 1"), "error names the job: {err}");
        // a job entry may redundantly carry op:"verify" (it is ignored)
        assert!(Request::parse(
            r#"{"op":"batch","jobs":[{"op":"verify","formula":"p cnf 0 0\n","proof":"0\n"}]}"#
        )
        .is_ok());
    }

    #[test]
    fn verify_body_jsonl_line_parses() {
        let body = r#"{"id":"j1","formula":"p cnf 0 0\n","proof":"0\n"}"#;
        let parsed = VerifyRequest::from_json_line(body).expect("body parses");
        assert_eq!(parsed.id.as_deref(), Some("j1"));
        // a non-verify op in a job file is an error
        assert!(VerifyRequest::from_json_line(r#"{"op":"stats"}"#).is_err());
    }

    #[test]
    fn metrics_response_roundtrips_with_newlines() {
        let metrics = Response::Metrics {
            text: "# TYPE a counter\na 1\n# TYPE b gauge\nb -2\n".into(),
        };
        let line = metrics.to_line();
        assert!(!line.contains('\n'), "newlines are escaped on the wire");
        assert_eq!(Response::parse(&line), Ok(metrics));
    }

    #[test]
    fn stats_parser_tolerates_version_skew() {
        // An older server: no `latency_us` at all.
        let old = r#"{"op":"stats","protocol_version":1,"counters":{"submitted":3},"queue_depth":0,"in_flight":0,"latency_ms":[]}"#;
        let Ok(Response::Stats(reply)) = Response::parse(old) else {
            panic!("old-server stats must parse");
        };
        assert_eq!(reply.counter("submitted"), Some(3));
        assert!(reply.latency_us.is_empty());
        assert_eq!(reply.latency("queue_wait"), None);

        // A newer server: unknown top-level fields, unknown summary
        // names, and unknown fields inside a summary.
        let new = r#"{"op":"stats","protocol_version":1,"counters":{"submitted":3},"queue_depth":1,"in_flight":0,"latency_ms":[],"latency_us":{"queue_wait":{"count":3,"p50":10,"p90":20,"p99":30,"min":5,"max":31,"p999":31},"warp_drive":{"count":1,"p50":2,"p90":2,"p99":2,"min":2,"max":2}},"future_field":{"nested":true}}"#;
        let Ok(Response::Stats(reply)) = Response::parse(new) else {
            panic!("newer-server stats must parse");
        };
        assert_eq!(
            reply.latency("queue_wait"),
            Some(&LatencySummary { count: 3, p50: 10, p90: 20, p99: 30, min: 5, max: 31 })
        );
        assert!(reply.latency("warp_drive").is_some(), "unknown names kept");
    }

    #[test]
    fn request_parser_ignores_unknown_fields() {
        assert_eq!(
            Request::parse(r#"{"op":"stats","verbose":true,"extra":{"x":1}}"#),
            Ok(Request::Stats)
        );
        assert_eq!(
            Request::parse(r#"{"op":"metrics","format":"prometheus"}"#),
            Ok(Request::Metrics)
        );
    }

    #[test]
    fn budget_resolves_over_server_default() {
        let spec = BudgetSpec {
            max_propagations: Some(5),
            ..BudgetSpec::default()
        };
        let base = Budget::unlimited().max_clause_visits(99);
        let resolved = spec.resolve(&base);
        assert_eq!(resolved.max_propagations, 5);
        assert_eq!(resolved.max_clause_visits, 99);
        assert_eq!(resolved.timeout, None);
    }

    #[test]
    fn unknown_op_is_an_error_not_a_panic() {
        assert!(Request::parse(r#"{"op":"frobnicate"}"#).is_err());
        assert!(Request::parse("not json").is_err());
        assert!(Response::parse(r#"{"op":"???"}"#).is_err());
    }
}
