//! Transport abstraction: the daemon speaks the same protocol over TCP
//! and (on Unix) Unix-domain sockets.
//!
//! An [`Endpoint`] names where the server listens or a client connects:
//! `tcp:HOST:PORT` (the `tcp:` prefix is optional) or `unix:PATH`.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::fd::AsRawFd;
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// A server or client address: TCP socket address or Unix socket path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address in `host:port` form (port `0` asks the OS to pick).
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Endpoint {
    /// A TCP endpoint.
    #[must_use]
    pub fn tcp(addr: impl Into<String>) -> Endpoint {
        Endpoint::Tcp(addr.into())
    }

    /// A Unix-socket endpoint.
    #[cfg(unix)]
    #[must_use]
    pub fn unix(path: impl Into<PathBuf>) -> Endpoint {
        Endpoint::Unix(path.into())
    }

    /// Parses `tcp:HOST:PORT`, `unix:PATH`, or bare `HOST:PORT`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unsupported forms.
    pub fn parse(text: &str) -> Result<Endpoint, String> {
        if let Some(addr) = text.strip_prefix("tcp:") {
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        if let Some(path) = text.strip_prefix("unix:") {
            #[cfg(unix)]
            return Ok(Endpoint::Unix(PathBuf::from(path)));
            #[cfg(not(unix))]
            return Err(format!("unix sockets are unsupported here: {path}"));
        }
        if text.contains(':') {
            Ok(Endpoint::Tcp(text.to_string()))
        } else {
            Err(format!(
                "bad endpoint {text:?}: expected tcp:HOST:PORT, \
                 unix:PATH, or HOST:PORT"
            ))
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A bound listener for either transport.
#[derive(Debug)]
pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    pub(crate) fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // a stale socket file from a previous run would make
                // bind fail with AddrInUse even though nobody listens
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
        }
    }

    /// The endpoint actually bound (TCP port 0 resolves to a real port).
    pub(crate) fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            Listener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr.as_pathname().ok_or_else(|| {
                    io::Error::other("unix listener has no pathname")
                })?;
                Ok(Endpoint::Unix(path.to_path_buf()))
            }
        }
    }

    pub(crate) fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                // Nagle + delayed ACK stalls pipelined request bursts by
                // ~40ms; responses are single small writes, so coalescing
                // buys nothing here.
                let _ = s.set_nodelay(true);
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => Ok(Stream::Unix(l.accept()?.0)),
        }
    }

    /// Switches the listener between blocking and readiness-driven
    /// accepts (the reactor polls it alongside the connections).
    pub(crate) fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// The raw fd, for `poll(2)` registration.
    #[cfg(unix)]
    pub(crate) fn raw_fd(&self) -> i32 {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l) => l.as_raw_fd(),
        }
    }
}

/// A connected stream for either transport.
#[derive(Debug)]
pub enum Stream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// Connects to `endpoint`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying connect failure.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Stream> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                // see Listener::accept: small request lines must not sit
                // in the send buffer waiting for a delayed ACK
                let _ = s.set_nodelay(true);
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
        }
    }

    /// A second handle to the same connection (for a reader/writer split).
    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
        }
    }

    /// Shuts down both directions, unblocking any reader.
    pub(crate) fn shutdown_both(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }

    /// Shuts down only the write half (half-close: responses can still
    /// be read after signalling end-of-requests).
    pub fn shutdown_write(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Write);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Write);
            }
        }
    }

    /// Switches the connection between blocking and non-blocking I/O.
    /// The flag lives on the file description, so it is shared with
    /// every [`Stream::try_clone`] of this connection.
    pub(crate) fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// Caps how long a blocking `read` may wait (`None` = forever).
    /// The router's health prober uses this so a wedged backend cannot
    /// hang the probe loop.
    pub(crate) fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// The raw fd, for `poll(2)` registration.
    #[cfg(unix)]
    pub(crate) fn raw_fd(&self) -> i32 {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }

    /// Blocks until the connection is writable or `timeout` elapses.
    /// Returns whether it became writable. Used by the reactor's write
    /// path when a non-blocking send fills the socket buffer.
    pub(crate) fn wait_writable(&self, timeout: Duration) -> io::Result<bool> {
        #[cfg(unix)]
        {
            let ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
            minipoll::wait_writable(self.raw_fd(), ms)
        }
        #[cfg(not(unix))]
        {
            // non-unix streams stay blocking, so writes never need this
            let _ = timeout;
            Ok(true)
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tcp_forms() {
        assert_eq!(
            Endpoint::parse("127.0.0.1:4000"),
            Ok(Endpoint::Tcp("127.0.0.1:4000".into()))
        );
        assert_eq!(
            Endpoint::parse("tcp:localhost:0"),
            Ok(Endpoint::Tcp("localhost:0".into()))
        );
    }

    #[cfg(unix)]
    #[test]
    fn parses_unix_form() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/satverifyd.sock"),
            Ok(Endpoint::Unix(PathBuf::from("/tmp/satverifyd.sock")))
        );
    }

    #[test]
    fn rejects_portless_garbage() {
        assert!(Endpoint::parse("nonsense").is_err());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for text in ["tcp:127.0.0.1:80", "unix:/tmp/x.sock"] {
            let ep = Endpoint::parse(text).expect("parse");
            assert_eq!(Endpoint::parse(&ep.to_string()), Ok(ep));
        }
    }
}
