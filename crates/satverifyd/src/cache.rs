//! Content-addressed verdict cache with single-flight deduplication.
//!
//! Verification is deterministic: the same (formula, proof, mode,
//! format, budget) quintuple always produces the same verdict. Fleets
//! re-submit identical certificates constantly — CI re-verifying a
//! proof artifact, N solver shards racing on one instance — so the
//! server keeps a bounded, byte-budgeted LRU of past verdicts keyed by
//! the *content* of the request, and **coalesces** concurrent identical
//! submissions: one leader runs the verification, every follower gets a
//! copy of the verdict when the leader finishes (single flight).
//!
//! ## Collision safety
//!
//! The key is a 64-bit FNV-1a fingerprint over a length-prefixed
//! canonical serialisation of the request *plus the serialised bytes
//! themselves*. A fingerprint match alone never serves a verdict: the
//! full key bytes must be equal. Two requests that collide in the hash
//! coexist in the same bucket and are verified independently.
//!
//! ## What is cacheable
//!
//! Only requests that carry their formula and proof **inline** are
//! content-addressed. A `formula_path`/`proof_path` request names a
//! server-local file whose bytes can change between submissions, so it
//! bypasses the cache entirely — content addressing stays honest.
//!
//! ## What is stored
//!
//! Only *deterministic* terminals: `verified`, `rejected`, and
//! `exhausted` with a deterministic budget reason (`propagations`,
//! `clause-visits`, `memory`). A wall-clock `timeout` or a `cancelled`
//! stop depends on scheduling, not content, and is never cached —
//! though an in-flight leader still fans its result out to the
//! followers that coalesced behind it, whatever the outcome.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::protocol::{JobResult, VerifyRequest};

/// Default cache byte budget: 64 MiB of keys + verdicts.
pub const DEFAULT_CACHE_BYTES: u64 = 64 * 1024 * 1024;

/// Cache tuning knobs, embedded in `ServerConfig`.
///
/// Disabled by default at the library level, so embedded servers (and
/// the scheduler-level tests and benches, which submit identical
/// trivial jobs on purpose) see every submission verified. The
/// `satverify serve` CLI turns the cache on unless `--no-cache`.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Whether the verdict cache (and single-flight coalescing) is on.
    pub enabled: bool,
    /// LRU byte budget across stored keys and verdicts.
    pub byte_budget: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { enabled: false, byte_budget: DEFAULT_CACHE_BYTES }
    }
}

/// 64-bit FNV-1a over `bytes` (also the router's shard hash).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Appends one `tag:length:content` section so distinct field splits
/// can never serialise to the same byte string.
fn push_section(out: &mut Vec<u8>, tag: &[u8], content: &[u8]) {
    out.extend_from_slice(tag);
    out.extend_from_slice(&(content.len() as u64).to_le_bytes());
    out.extend_from_slice(content);
}

/// The content address of one cacheable request: a fingerprint plus the
/// full canonical bytes it was computed from (kept for collision
/// checks). Cloning is cheap — the bytes are shared.
#[derive(Clone, Debug)]
pub struct CacheKey {
    hash: u64,
    bytes: Arc<[u8]>,
}

impl CacheKey {
    /// Builds the content address for `request`, or `None` when the
    /// request is not cacheable (any path-based input; see module docs).
    #[must_use]
    pub fn for_request(request: &VerifyRequest) -> Option<CacheKey> {
        let formula = request.formula.as_deref()?;
        let proof = request.proof.as_deref()?;
        if request.stream {
            return None; // streaming requires a proof_path anyway
        }
        let mut bytes =
            Vec::with_capacity(formula.len() + proof.len() + 96);
        push_section(&mut bytes, b"F", formula.as_bytes());
        push_section(&mut bytes, b"P", proof.as_bytes());
        push_section(&mut bytes, b"m", request.mode.as_deref().unwrap_or("").as_bytes());
        push_section(
            &mut bytes,
            b"f",
            request.proof_format.as_deref().unwrap_or("").as_bytes(),
        );
        let budget = [
            request.budget.max_propagations,
            request.budget.max_clause_visits,
            request.budget.max_memory_bytes,
            request.budget.timeout_ms,
        ];
        for limit in budget {
            match limit {
                // presence byte keeps Some(0) distinct from None
                Some(n) => {
                    bytes.push(1);
                    bytes.extend_from_slice(&n.to_le_bytes());
                }
                None => bytes.push(0),
            }
        }
        let hash = fnv1a64(&bytes);
        Some(CacheKey { hash, bytes: bytes.into() })
    }

    /// Builds a key from raw parts. Exists so collision-safety tests can
    /// force two keys onto one fingerprint; production code always goes
    /// through [`CacheKey::for_request`].
    #[must_use]
    pub fn from_raw_parts(hash: u64, bytes: Vec<u8>) -> CacheKey {
        CacheKey { hash, bytes: bytes.into() }
    }

    /// The 64-bit fingerprint (bucket index; never trusted alone).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.hash
    }
}

/// Whether `result` is deterministic enough to store (see module docs).
#[must_use]
pub fn storable(result: &JobResult) -> bool {
    match result.outcome.as_str() {
        "verified" | "rejected" => true,
        "exhausted" => matches!(
            result.exhaust_reason.as_deref(),
            Some("propagations" | "clause-visits" | "memory")
        ),
        _ => false,
    }
}

/// Strips the per-submission fields (`id`, `latency_ms`) so the stored
/// verdict is purely content-derived; they are re-attached per serve.
#[must_use]
pub fn normalize(result: &JobResult) -> JobResult {
    JobResult { id: None, latency_ms: None, ..result.clone() }
}

/// The admission decision for one cacheable request.
pub enum Admit<F> {
    /// A stored verdict matched (full key bytes equal): serve it now.
    /// The follower value is handed back so the caller can respond with
    /// the submitter's own `id` and latency.
    Hit {
        /// The stored, normalised verdict.
        verdict: JobResult,
        /// The submitted job, returned unconsumed.
        follower: F,
    },
    /// An identical request is already in flight; the job was parked
    /// behind its leader and will be answered at completion.
    Coalesced,
    /// First flight for this content: the caller must enqueue the job
    /// and later call [`VerdictCache::complete`].
    Leader(F),
}

struct Stored {
    bytes: Arc<[u8]>,
    verdict: JobResult,
    cost: u64,
    last_used: u64,
}

struct Pending<F> {
    bytes: Arc<[u8]>,
    followers: Vec<F>,
}

struct Inner<F> {
    stored: HashMap<u64, Vec<Stored>>,
    pending: HashMap<u64, Vec<Pending<F>>>,
    bytes: u64,
    tick: u64,
}

/// Bounded content-addressed verdict store + single-flight table. `F`
/// is the caller's job type, parked for coalesced submissions.
pub struct VerdictCache<F> {
    inner: Mutex<Inner<F>>,
    byte_budget: u64,
}

/// Approximate heap cost of one stored entry, for the byte budget.
fn entry_cost(bytes: &[u8], verdict: &JobResult) -> u64 {
    let strings = verdict.outcome.len()
        + verdict.exhaust_reason.as_deref().map_or(0, str::len)
        + verdict.detail.as_deref().map_or(0, str::len);
    bytes.len() as u64 + strings as u64 + 128
}

impl<F> VerdictCache<F> {
    /// An empty cache bounded by `byte_budget` bytes.
    #[must_use]
    pub fn new(byte_budget: u64) -> VerdictCache<F> {
        VerdictCache {
            inner: Mutex::new(Inner {
                stored: HashMap::new(),
                pending: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            byte_budget,
        }
    }

    /// Admits one cacheable submission: hit, coalesce, or lead.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned.
    pub fn admit(&self, key: &CacheKey, follower: F) -> Admit<F> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(bucket) = inner.stored.get_mut(&key.hash) {
            if let Some(entry) =
                bucket.iter_mut().find(|e| e.bytes == key.bytes)
            {
                entry.last_used = tick;
                return Admit::Hit { verdict: entry.verdict.clone(), follower };
            }
        }
        if let Some(bucket) = inner.pending.get_mut(&key.hash) {
            if let Some(flight) =
                bucket.iter_mut().find(|p| p.bytes == key.bytes)
            {
                flight.followers.push(follower);
                return Admit::Coalesced;
            }
        }
        inner
            .pending
            .entry(key.hash)
            .or_default()
            .push(Pending { bytes: Arc::clone(&key.bytes), followers: Vec::new() });
        Admit::Leader(follower)
    }

    /// Completes a leader's flight: removes the single-flight entry,
    /// stores the verdict when one is given (pass `None` for
    /// non-deterministic or error outcomes), and returns the parked
    /// followers plus the number of LRU evictions the insert caused.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned.
    pub fn complete(
        &self,
        key: &CacheKey,
        verdict: Option<&JobResult>,
    ) -> (Vec<F>, u64) {
        let mut inner = self.inner.lock().expect("cache lock");
        let followers = take_pending(&mut inner.pending, key)
            .map(|p| p.followers)
            .unwrap_or_default();
        let mut evictions = 0;
        if let Some(verdict) = verdict {
            let cost = entry_cost(&key.bytes, verdict);
            // an entry larger than the whole budget can never be kept
            if cost <= self.byte_budget {
                inner.tick += 1;
                let tick = inner.tick;
                let bucket = inner.stored.entry(key.hash).or_default();
                if !bucket.iter().any(|e| e.bytes == key.bytes) {
                    bucket.push(Stored {
                        bytes: Arc::clone(&key.bytes),
                        verdict: normalize(verdict),
                        cost,
                        last_used: tick,
                    });
                    inner.bytes += cost;
                    evictions = evict_over_budget(&mut inner, self.byte_budget, &key.bytes);
                }
            }
        }
        (followers, evictions)
    }

    /// The leader for `key` terminated without a result to fan out
    /// (cancelled by its client's disconnect). Pops one parked follower
    /// to promote as the new leader — the flight entry stays while
    /// followers remain, and is removed once none are left.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned.
    pub fn leader_gone(&self, key: &CacheKey) -> Option<F> {
        let mut inner = self.inner.lock().expect("cache lock");
        let bucket = inner.pending.get_mut(&key.hash)?;
        let index = bucket.iter().position(|p| p.bytes == key.bytes)?;
        if bucket[index].followers.is_empty() {
            bucket.remove(index);
            if bucket.is_empty() {
                inner.pending.remove(&key.hash);
            }
            return None;
        }
        Some(bucket[index].followers.remove(0))
    }

    /// Removes every parked follower matching `pred` (their client
    /// disconnected before the leader finished). Leaders are not
    /// affected — they live in the queue or a worker.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned.
    pub fn purge<P: FnMut(&F) -> bool>(&self, mut pred: P) -> Vec<F> {
        let mut inner = self.inner.lock().expect("cache lock");
        let mut purged = Vec::new();
        for bucket in inner.pending.values_mut() {
            for flight in bucket.iter_mut() {
                let mut kept = Vec::with_capacity(flight.followers.len());
                for follower in flight.followers.drain(..) {
                    if pred(&follower) {
                        purged.push(follower);
                    } else {
                        kept.push(follower);
                    }
                }
                flight.followers = kept;
            }
        }
        purged
    }

    /// Stored verdict entries right now.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned.
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        let inner = self.inner.lock().expect("cache lock");
        inner.stored.values().map(|b| b.len() as u64).sum()
    }

    /// Bytes charged against the budget right now.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned.
    #[must_use]
    pub fn bytes_used(&self) -> u64 {
        self.inner.lock().expect("cache lock").bytes
    }
}

fn take_pending<F>(
    pending: &mut HashMap<u64, Vec<Pending<F>>>,
    key: &CacheKey,
) -> Option<Pending<F>> {
    let bucket = pending.get_mut(&key.hash)?;
    let index = bucket.iter().position(|p| p.bytes == key.bytes)?;
    let flight = bucket.remove(index);
    if bucket.is_empty() {
        pending.remove(&key.hash);
    }
    Some(flight)
}

/// Evicts least-recently-used entries until the budget holds, never
/// evicting the just-inserted key. Linear scan: the cache holds large
/// text blobs, so entry counts stay small relative to the byte budget.
fn evict_over_budget<F>(
    inner: &mut Inner<F>,
    budget: u64,
    keep: &Arc<[u8]>,
) -> u64 {
    let mut evicted = 0;
    while inner.bytes > budget {
        let victim = inner
            .stored
            .iter()
            .flat_map(|(&hash, bucket)| {
                bucket
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| !Arc::ptr_eq(&e.bytes, keep))
                    .map(move |(i, e)| (e.last_used, hash, i))
            })
            .min()
            .map(|(_, hash, i)| (hash, i));
        let Some((hash, index)) = victim else { break };
        let bucket = inner.stored.get_mut(&hash).expect("victim bucket");
        let entry = bucket.remove(index);
        if bucket.is_empty() {
            inner.stored.remove(&hash);
        }
        inner.bytes = inner.bytes.saturating_sub(entry.cost);
        evicted += 1;
    }
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::BudgetSpec;

    fn request(formula: &str, proof: &str) -> VerifyRequest {
        VerifyRequest {
            formula: Some(formula.into()),
            proof: Some(proof.into()),
            ..VerifyRequest::default()
        }
    }

    fn verdict(outcome: &str) -> JobResult {
        JobResult { outcome: outcome.into(), ..JobResult::default() }
    }

    #[test]
    fn path_based_requests_are_not_cacheable() {
        let by_path = VerifyRequest {
            formula_path: Some("/tmp/f.cnf".into()),
            proof: Some("0\n".into()),
            ..VerifyRequest::default()
        };
        assert!(CacheKey::for_request(&by_path).is_none());
        assert!(CacheKey::for_request(&request("p cnf 0 0\n", "0\n")).is_some());
    }

    #[test]
    fn key_distinguishes_every_content_field() {
        let base = request("p cnf 1 1\n1 0\n", "0\n");
        let mut mode = base.clone();
        mode.mode = Some("all".into());
        let mut budget = base.clone();
        budget.budget = BudgetSpec {
            max_propagations: Some(0),
            ..BudgetSpec::default()
        };
        let keys: Vec<u64> = [&base, &mode, &budget]
            .iter()
            .map(|r| CacheKey::for_request(r).expect("cacheable").fingerprint())
            .collect();
        assert_ne!(keys[0], keys[1], "mode is part of the address");
        assert_ne!(keys[0], keys[2], "budget Some(0) differs from None");
    }

    #[test]
    fn single_flight_parks_followers_and_fans_out() {
        let cache: VerdictCache<u32> = VerdictCache::new(1 << 20);
        let key = CacheKey::for_request(&request("p cnf 0 0\n", "0\n")).unwrap();
        assert!(matches!(cache.admit(&key, 1), Admit::Leader(1)));
        assert!(matches!(cache.admit(&key, 2), Admit::Coalesced));
        assert!(matches!(cache.admit(&key, 3), Admit::Coalesced));
        let (followers, _) = cache.complete(&key, Some(&verdict("verified")));
        assert_eq!(followers, vec![2, 3]);
        // now stored: the next admit is a hit and returns the job back
        match cache.admit(&key, 4) {
            Admit::Hit { verdict, follower } => {
                assert_eq!(verdict.outcome, "verified");
                assert_eq!(follower, 4);
            }
            _ => panic!("expected a hit after completion"),
        }
    }

    #[test]
    fn equal_fingerprint_unequal_bytes_never_serves() {
        let cache: VerdictCache<u32> = VerdictCache::new(1 << 20);
        let a = CacheKey::from_raw_parts(42, b"content-a".to_vec());
        let b = CacheKey::from_raw_parts(42, b"content-b".to_vec());
        assert!(matches!(cache.admit(&a, 1), Admit::Leader(_)));
        cache.complete(&a, Some(&verdict("verified")));
        // same fingerprint, different bytes: must lead, not hit
        assert!(matches!(cache.admit(&b, 2), Admit::Leader(_)));
        cache.complete(&b, Some(&verdict("rejected")));
        // both coexist in the bucket and serve their own verdict
        match cache.admit(&a, 3) {
            Admit::Hit { verdict, .. } => assert_eq!(verdict.outcome, "verified"),
            _ => panic!("a should hit"),
        }
        match cache.admit(&b, 4) {
            Admit::Hit { verdict, .. } => assert_eq!(verdict.outcome, "rejected"),
            _ => panic!("b should hit"),
        }
    }

    #[test]
    fn leader_gone_promotes_followers_one_at_a_time() {
        let cache: VerdictCache<u32> = VerdictCache::new(1 << 20);
        let key = CacheKey::for_request(&request("p cnf 0 0\n", "0\n")).unwrap();
        assert!(matches!(cache.admit(&key, 1), Admit::Leader(_)));
        assert!(matches!(cache.admit(&key, 2), Admit::Coalesced));
        assert!(matches!(cache.admit(&key, 3), Admit::Coalesced));
        assert_eq!(cache.leader_gone(&key), Some(2));
        // 3 is still parked behind the promoted leader
        assert!(matches!(cache.admit(&key, 4), Admit::Coalesced));
        let (followers, _) = cache.complete(&key, Some(&verdict("verified")));
        assert_eq!(followers, vec![3, 4]);
        // a flight with no followers left disappears entirely
        let lone = CacheKey::for_request(&request("p cnf 1 1\n1 0\n", "0\n")).unwrap();
        assert!(matches!(cache.admit(&lone, 9), Admit::Leader(_)));
        assert_eq!(cache.leader_gone(&lone), None);
        assert!(matches!(cache.admit(&lone, 10), Admit::Leader(_)));
    }

    #[test]
    fn purge_removes_matching_followers_only() {
        let cache: VerdictCache<(u64, u32)> = VerdictCache::new(1 << 20);
        let key = CacheKey::for_request(&request("p cnf 0 0\n", "0\n")).unwrap();
        assert!(matches!(cache.admit(&key, (1, 0)), Admit::Leader(_)));
        cache.admit(&key, (2, 1));
        cache.admit(&key, (3, 2));
        cache.admit(&key, (2, 3));
        let purged = cache.purge(|&(conn, _)| conn == 2);
        assert_eq!(purged, vec![(2, 1), (2, 3)]);
        let (followers, _) = cache.complete(&key, None);
        assert_eq!(followers, vec![(3, 2)]);
    }

    #[test]
    fn lru_eviction_respects_byte_budget_and_recency() {
        let blob = "x".repeat(512);
        let keys: Vec<CacheKey> = (0..4)
            .map(|i| {
                CacheKey::for_request(&request(&format!("{blob}{i}"), "0\n"))
                    .unwrap()
            })
            .collect();
        // room for roughly two entries
        let cache: VerdictCache<u32> = VerdictCache::new(1600);
        for key in &keys[..2] {
            assert!(matches!(cache.admit(key, 0), Admit::Leader(_)));
            let (_, evicted) = cache.complete(key, Some(&verdict("verified")));
            assert_eq!(evicted, 0);
        }
        assert_eq!(cache.entry_count(), 2);
        // touch key 0 so key 1 is the LRU victim
        assert!(matches!(cache.admit(&keys[0], 0), Admit::Hit { .. }));
        assert!(matches!(cache.admit(&keys[2], 0), Admit::Leader(_)));
        let (_, evicted) = cache.complete(&keys[2], Some(&verdict("verified")));
        assert!(evicted >= 1, "insert over budget evicts");
        assert!(cache.bytes_used() <= 1600);
        assert!(matches!(cache.admit(&keys[0], 0), Admit::Hit { .. }), "recently used survives");
        assert!(matches!(cache.admit(&keys[1], 0), Admit::Leader(_)), "LRU victim is gone");
    }

    #[test]
    fn non_deterministic_outcomes_are_never_stored() {
        for (outcome, reason) in [
            ("exhausted", Some("timeout")),
            ("exhausted", Some("cancelled")),
        ] {
            let result = JobResult {
                outcome: outcome.into(),
                exhaust_reason: reason.map(str::to_string),
                ..JobResult::default()
            };
            assert!(!storable(&result), "{outcome}/{reason:?}");
        }
        for (outcome, reason) in [
            ("verified", None),
            ("rejected", None),
            ("exhausted", Some("propagations")),
            ("exhausted", Some("clause-visits")),
            ("exhausted", Some("memory")),
        ] {
            let result = JobResult {
                outcome: outcome.into(),
                exhaust_reason: reason.map(str::to_string),
                ..JobResult::default()
            };
            assert!(storable(&result), "{outcome}/{reason:?}");
        }
    }
}
