//! A bounded, client-fair job queue with admission control.
//!
//! The queue holds at most `capacity` jobs across all clients. A push
//! against a full queue fails **immediately** ([`PushError::Full`]) —
//! the server turns that into an `overloaded` response instead of
//! buffering without bound, so a burst degrades into explicit,
//! retryable rejections rather than unbounded memory growth and
//! silently exploding latency.
//!
//! Jobs are kept in per-client FIFO lanes and dequeued round-robin
//! across lanes: each client's jobs run in submission order, but a
//! client that submits 1000 jobs cannot starve one that submits 2.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue was closed for draining.
    Closed,
}

struct Inner<T> {
    /// `(client, lane)` in round-robin order; empty lanes are removed.
    lanes: Vec<(u64, VecDeque<T>)>,
    /// Next lane index to serve.
    cursor: usize,
    /// Total queued jobs across lanes.
    len: usize,
    closed: bool,
}

/// A bounded multi-client FIFO queue (see module docs).
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// An open queue admitting at most `capacity` jobs (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            inner: Mutex::new(Inner {
                lanes: Vec::new(),
                cursor: 0,
                len: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued.
    ///
    /// # Panics
    ///
    /// Panics if the queue lock was poisoned (a pusher/popper panicked).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").len
    }

    /// Whether no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item` on `client`'s lane.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`JobQueue::close`]; in both cases `item` is returned untouched
    /// inside the error's companion value.
    ///
    /// # Panics
    ///
    /// Panics if the queue lock was poisoned.
    pub fn push(&self, client: u64, item: T) -> Result<(), (PushError, T)> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err((PushError::Closed, item));
        }
        if inner.len >= self.capacity {
            return Err((PushError::Full, item));
        }
        match inner.lanes.iter_mut().find(|(c, _)| *c == client) {
            Some((_, lane)) => lane.push_back(item),
            None => {
                let mut lane = VecDeque::with_capacity(1);
                lane.push_back(item);
                inner.lanes.push((client, lane));
            }
        }
        inner.len += 1;
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the next job, blocking while the queue is empty and
    /// open. Returns `None` once the queue is closed **and** empty —
    /// the worker-pool exit signal.
    ///
    /// # Panics
    ///
    /// Panics if the queue lock was poisoned.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.len > 0 {
                let lane_index = inner.cursor % inner.lanes.len();
                let (_, lane) = &mut inner.lanes[lane_index];
                let item = lane.pop_front().expect("non-empty lane");
                if lane.is_empty() {
                    inner.lanes.remove(lane_index);
                    // the cursor now points at the lane after the
                    // removed one — no advance needed
                } else {
                    inner.cursor = lane_index + 1;
                }
                if inner.lanes.is_empty() {
                    inner.cursor = 0;
                }
                inner.len -= 1;
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Removes and returns every queued job belonging to `client`
    /// (client disconnected: its pending work is cancelled).
    ///
    /// # Panics
    ///
    /// Panics if the queue lock was poisoned.
    pub fn purge_client(&self, client: u64) -> Vec<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        let Some(index) = inner.lanes.iter().position(|(c, _)| *c == client) else {
            return Vec::new();
        };
        let (_, lane) = inner.lanes.remove(index);
        inner.len -= lane.len();
        if index < inner.cursor {
            inner.cursor -= 1;
        }
        if inner.lanes.is_empty() {
            inner.cursor = 0;
        }
        lane.into_iter().collect()
    }

    /// Closes the queue: further pushes fail with [`PushError::Closed`],
    /// poppers drain the remaining jobs and then receive `None`.
    ///
    /// # Panics
    ///
    /// Panics if the queue lock was poisoned.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_one_client() {
        let q = JobQueue::new(8);
        for i in 0..4 {
            q.push(1, i).expect("push");
        }
        assert_eq!(q.len(), 4);
        assert_eq!((q.pop(), q.pop(), q.pop(), q.pop()),
                   (Some(0), Some(1), Some(2), Some(3)));
    }

    #[test]
    fn round_robin_across_clients() {
        let q = JobQueue::new(16);
        // client 1 floods first; client 2 trickles in afterwards
        for i in 0..4 {
            q.push(1, (1, i)).expect("push");
        }
        q.push(2, (2, 0)).expect("push");
        q.push(2, (2, 1)).expect("push");
        let order: Vec<_> = std::iter::from_fn(|| {
            (!q.is_empty()).then(|| q.pop().expect("non-empty"))
        })
        .collect();
        // client 2's first job runs second, not fifth
        assert_eq!(
            order,
            vec![(1, 0), (2, 0), (1, 1), (2, 1), (1, 2), (1, 3)]
        );
    }

    #[test]
    fn admission_control_rejects_at_capacity() {
        let q = JobQueue::new(2);
        q.push(1, "a").expect("push");
        q.push(2, "b").expect("push");
        assert_eq!(q.push(3, "c"), Err((PushError::Full, "c")));
        // popping frees a slot
        let _ = q.pop();
        q.push(3, "c").expect("push after pop");
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = JobQueue::new(4);
        q.push(1, 10).expect("push");
        q.close();
        assert_eq!(q.push(1, 11), Err((PushError::Closed, 11)));
        assert_eq!(q.pop(), Some(10), "queued work survives close");
        assert_eq!(q.pop(), None, "then poppers are released");
    }

    #[test]
    fn purge_removes_only_that_client() {
        let q = JobQueue::new(8);
        q.push(1, (1, 0)).expect("push");
        q.push(2, (2, 0)).expect("push");
        q.push(1, (1, 1)).expect("push");
        let purged = q.purge_client(1);
        assert_eq!(purged, vec![(1, 0), (1, 1)]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((2, 0)));
        assert!(q.purge_client(99).is_empty());
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        let q = Arc::new(JobQueue::new(2));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // the popper may or may not have parked yet; push wakes either way
        q.push(7, 42).expect("push");
        assert_eq!(popper.join().expect("join"), Some(42));
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(2));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        q.close();
        assert_eq!(popper.join().expect("join"), None);
    }
}
