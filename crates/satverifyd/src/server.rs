//! The daemon: connection I/O, a bounded worker pool, admission
//! control, the content-addressed verdict cache, cancellation on
//! disconnect, and graceful drain.
//!
//! ## Threading model
//!
//! Connection I/O runs under one of two models ([`IoModel`]):
//!
//! * **Reactor** (default on Unix): a single thread `poll(2)`s the
//!   listener and every connection, so 10k idle connections cost one
//!   thread, not 10k. Request lines are parsed and dispatched from the
//!   reactor; responses are written by whichever thread completes them.
//! * **Threads**: one accept thread plus one reader thread per
//!   connection (the original model, and the fallback where `poll` is
//!   unavailable).
//!
//! Under both models, `workers` **worker** threads pop the bounded
//! [`JobQueue`] fairly (round-robin across clients), each running one
//! job at a time under a per-job [`Harness`] (budget +
//! [`CancelToken`]), panic-isolated with `catch_unwind`.
//!
//! Responses are written back on the submitting connection, one JSON
//! line per response, in completion order.
//!
//! ## Verdict cache
//!
//! With [`CacheConfig::enabled`], inline submissions are
//! content-addressed (see [`crate::cache`]): a stored verdict answers
//! immediately (`cache_hit`), concurrent identical submissions coalesce
//! behind one leader (single flight), and deterministic verdicts are
//! stored under an LRU byte budget. Every submission — served fresh,
//! from cache, or by fan-out — still gets exactly one terminal
//! disposition in the stats and the event log.
//!
//! ## Drain
//!
//! [`ServerHandle::shutdown`] (or a `shutdown` request) flips the
//! draining flag, closes the queue to new pushes, and wakes the I/O
//! thread. Queued and in-flight jobs finish and their responses are
//! delivered; new `verify` requests get a `draining` error;
//! [`ServerHandle::join`] returns once the pool is idle.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::json::Json;
use obs::EventLog;
use proofver::{Budget, CancelToken, FaultPlan, Harness};

use crate::cache::{self, Admit, CacheConfig, CacheKey, VerdictCache};
use crate::job;
use crate::net::{Endpoint, Listener, Stream};
use crate::protocol::{
    ErrorCode, JobResult, LatencySummary, Request, Response, StatsReply,
    VerifyRequest,
};
use crate::queue::{JobQueue, PushError};
use crate::stats::{Event, ServerStats, StatsSnapshot};

#[cfg(unix)]
mod reactor;

/// Per-job fault-plan factory used by the deterministic service tests:
/// given the job's id (the sequence number assigned at submission —
/// every `verify` request consumes one, including rejected
/// submissions), produce the [`FaultPlan`] its harness runs under.
/// Production servers leave it unset ([`FaultPlan::none`] everywhere).
pub type FaultFactory = Arc<dyn Fn(u64) -> FaultPlan + Send + Sync>;

/// How the daemon multiplexes connection I/O.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoModel {
    /// One readiness-driven thread `poll(2)`s the listener and every
    /// connection. Unix only; elsewhere it silently falls back to
    /// [`IoModel::Threads`].
    Reactor,
    /// One accept thread plus one blocking reader thread per
    /// connection.
    Threads,
}

impl Default for IoModel {
    fn default() -> Self {
        if cfg!(unix) { IoModel::Reactor } else { IoModel::Threads }
    }
}

/// Server tuning knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads checking jobs concurrently (min 1).
    pub workers: usize,
    /// Bounded queue capacity; a full queue answers `overloaded`.
    pub queue_capacity: usize,
    /// Budget applied to jobs that do not set their own; request fields
    /// override individually.
    pub default_budget: Budget,
    /// Verdict-cache knobs (off by default; see [`CacheConfig`]).
    pub cache: CacheConfig,
    /// Connection I/O model (readiness-driven by default on Unix).
    pub io: IoModel,
    /// Test-only fault injection (see [`FaultFactory`]).
    pub faults: Option<FaultFactory>,
    /// Optional JSONL job-lifecycle log (see `docs/OBSERVABILITY.md`).
    pub event_log: Option<Arc<EventLog>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            default_budget: Budget::unlimited(),
            cache: CacheConfig::default(),
            io: IoModel::default(),
            faults: None,
            event_log: None,
        }
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("default_budget", &self.default_budget)
            .field("cache", &self.cache)
            .field("io", &self.io)
            .field("faults", &self.faults.as_ref().map(|_| "<factory>"))
            .field("event_log", &self.event_log.as_ref().map(|_| "<log>"))
            .finish()
    }
}

impl ServerConfig {
    /// Sets the worker-pool size.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the queue capacity (admission bound).
    #[must_use]
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Sets the default per-job budget.
    #[must_use]
    pub fn default_budget(mut self, budget: Budget) -> Self {
        self.default_budget = budget;
        self
    }

    /// Enables the verdict cache with `bytes` of LRU budget.
    #[must_use]
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.cache = CacheConfig { enabled: true, byte_budget: bytes };
        self
    }

    /// Turns the verdict cache (and single-flight coalescing) on or
    /// off, keeping the configured byte budget.
    #[must_use]
    pub fn cache_enabled(mut self, enabled: bool) -> Self {
        self.cache.enabled = enabled;
        self
    }

    /// Selects the connection I/O model.
    #[must_use]
    pub fn io(mut self, model: IoModel) -> Self {
        self.io = model;
        self
    }

    /// Arms the test-only fault factory.
    #[must_use]
    pub fn fault_factory(mut self, factory: FaultFactory) -> Self {
        self.faults = Some(factory);
        self
    }

    /// Attaches a JSONL job-lifecycle event log.
    #[must_use]
    pub fn event_log(mut self, log: Arc<EventLog>) -> Self {
        self.event_log = Some(log);
        self
    }
}

/// One admitted verification job.
struct Job {
    seq: u64,
    conn: u64,
    request: VerifyRequest,
    cancel: CancelToken,
    writer: SharedWriter,
    submitted: Instant,
    /// The content address, when the request is cacheable and the
    /// cache is on. A queued job holding one is a single-flight leader.
    cache_key: Option<CacheKey>,
}

type SharedWriter = Arc<Mutex<Stream>>;

struct Shared {
    config: ServerConfig,
    queue: JobQueue<Job>,
    stats: ServerStats,
    cache: VerdictCache<Job>,
    draining: AtomicBool,
    /// Set by `join` once the workers are gone: tells the reactor to
    /// sweep its remaining connections and exit.
    stop: AtomicBool,
    endpoint: Endpoint,
    /// `(conn, seq, token)` for every job currently inside a worker.
    running: Mutex<Vec<(u64, u64, CancelToken)>>,
    /// A handle per live connection, to half-close at drain completion.
    conns: Mutex<HashMap<u64, Stream>>,
    next_seq: AtomicU64,
    /// Monotonic zero point for event-log timestamps.
    epoch: Instant,
}

/// Builder for one lifecycle event: `{ts_us, event, conn, ...}`.
/// Timestamps are µs since the server's monotonic epoch, so within one
/// log they are totally ordered and subtraction gives durations.
struct EventBuilder(Json);

impl EventBuilder {
    fn new(shared: &Shared, event: &str, conn: u64) -> EventBuilder {
        let mut obj = Json::object();
        push_u64_json(&mut obj, "ts_us", shared.epoch.elapsed().as_micros() as u64);
        obj.push("event", event);
        push_u64_json(&mut obj, "conn", conn);
        EventBuilder(obj)
    }

    fn job(mut self, seq: u64, id: Option<&str>) -> EventBuilder {
        push_u64_json(&mut self.0, "job", seq);
        if let Some(id) = id {
            self.0.push("id", id);
        }
        self
    }

    fn field(mut self, key: &str, value: &str) -> EventBuilder {
        self.0.push(key, value);
        self
    }

    fn us(mut self, key: &str, us: u64) -> EventBuilder {
        push_u64_json(&mut self.0, key, us);
        self
    }
}

fn push_u64_json(obj: &mut Json, key: &str, value: u64) {
    obj.push(key, Json::Int(i64::try_from(value).unwrap_or(i64::MAX)));
}

impl Shared {
    /// Appends one event to the log, if one is attached. Log I/O errors
    /// are swallowed: observability must never take the daemon down.
    fn emit(&self, event: EventBuilder) {
        if let Some(log) = &self.config.event_log {
            let _ = log.append(&event.0);
        }
    }

    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return; // already draining
        }
        // no new pushes; poppers finish the backlog and then exit
        self.queue.close();
        // the I/O thread may be parked in accept()/poll(); poke it
        // awake so it can observe the flag (the reactor drops the
        // listener *before* accepting, so the poke never becomes a
        // connection)
        let _ = Stream::connect(&self.endpoint);
    }
}

/// The daemon's front door.
pub struct Server;

impl Server {
    /// Binds `endpoint` and starts the I/O thread and worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(endpoint: &Endpoint, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = Listener::bind(endpoint)?;
        let local = listener.local_endpoint()?;
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            stats: ServerStats::new(),
            cache: VerdictCache::new(config.cache.byte_budget),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            endpoint: local.clone(),
            running: Mutex::new(Vec::new()),
            conns: Mutex::new(HashMap::new()),
            next_seq: AtomicU64::new(0),
            epoch: Instant::now(),
            config,
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("satverifyd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let io = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("satverifyd-io".into())
                .spawn(move || match shared.config.io {
                    #[cfg(unix)]
                    IoModel::Reactor => reactor::run(listener, &shared),
                    #[cfg(not(unix))]
                    IoModel::Reactor => accept_loop(&listener, &shared),
                    IoModel::Threads => accept_loop(&listener, &shared),
                })
                .expect("spawn I/O thread")
        };
        Ok(ServerHandle { shared, io: Some(io), workers })
    }
}

/// A running server: its bound endpoint, drain trigger, and join.
pub struct ServerHandle {
    shared: Arc<Shared>,
    io: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The endpoint actually bound (TCP port 0 resolved).
    #[must_use]
    pub fn local_endpoint(&self) -> Endpoint {
        self.shared.endpoint.clone()
    }

    /// Starts a graceful drain: stop admitting, finish queued and
    /// in-flight jobs. Idempotent; returns immediately.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// A cloneable trigger for starting the drain from another thread
    /// (e.g. a signal or stdin watcher) while this handle blocks in
    /// [`ServerHandle::join`].
    #[must_use]
    pub fn drain_trigger(&self) -> DrainTrigger {
        DrainTrigger { shared: Arc::clone(&self.shared) }
    }

    /// Whether a drain has begun.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// A snapshot of the server's counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Waits for the drain to complete: every queued and in-flight job
    /// has been answered, the worker pool is gone, and the I/O thread
    /// has exited. Call [`ServerHandle::shutdown`] first (or let a
    /// client's `shutdown` request do it).
    ///
    /// # Panics
    ///
    /// Panics if the I/O or a worker thread itself panicked — a server
    /// bug; job panics are isolated inside the workers and do *not* end
    /// up here.
    pub fn join(mut self) {
        for worker in self.workers.drain(..) {
            worker.join().expect("worker panicked");
        }
        // the backlog is answered; now the I/O thread can go. The
        // threaded accept loop already exited on the drain poke; the
        // reactor polls this flag and sweeps its connections out.
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(io) = self.io.take() {
            io.join().expect("I/O thread panicked");
        }
        // lingering clients see EOF instead of a dead silent socket
        for (_, stream) in self.shared.conns.lock().expect("conn registry").drain() {
            stream.shutdown_both();
        }
        // the pool is idle: every lifecycle event has been appended
        if let Some(log) = &self.shared.config.event_log {
            let _ = log.flush();
        }
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.shared.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A cloneable drain trigger detached from the [`ServerHandle`].
#[derive(Clone)]
pub struct DrainTrigger {
    shared: Arc<Shared>,
}

impl DrainTrigger {
    /// Starts the graceful drain (idempotent).
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }
}

fn accept_loop(listener: &Listener, shared: &Arc<Shared>) {
    let mut next_conn = 0u64;
    loop {
        let stream = listener.accept();
        if shared.draining.load(Ordering::SeqCst) {
            // the stream (if any) is the drain poke or a client racing
            // the shutdown; either way, no new connections now
            return;
        }
        let Ok(stream) = stream else { continue };
        let conn = next_conn;
        next_conn += 1;
        let shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name(format!("satverifyd-conn-{conn}"))
            .spawn(move || serve_connection(&shared, conn, stream));
        // reader threads detach: they exit on client EOF, and join()
        // half-closes any that linger past the drain
        drop(spawned);
    }
}

/// How long a response write may sit in `poll(2)` waiting for the
/// client to drain its socket before the connection is given up on.
const WRITE_STALL_LIMIT: Duration = Duration::from_secs(30);

fn write_line(writer: &SharedWriter, response: &Response) -> io::Result<()> {
    let mut line = response.to_line();
    line.push('\n');
    let mut stream = writer.lock().expect("writer lock");
    write_all_stream(&mut stream, line.as_bytes())
}

/// `write_all` that survives a non-blocking socket: the reactor marks
/// the whole file description non-blocking, and workers write through
/// clones of it. On `WouldBlock` the writer parks in `poll(2)` until
/// the socket drains, bounded so a client that never reads cannot
/// wedge a worker forever.
fn write_all_stream(stream: &mut Stream, mut buf: &[u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match stream.write(buf) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if !stream.wait_writable(WRITE_STALL_LIMIT)? {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "client stopped reading; dropping the connection",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    stream.flush()
}

fn serve_connection(shared: &Arc<Shared>, conn: u64, stream: Stream) {
    let Ok(write_half) = stream.try_clone() else { return };
    if let Ok(registry_half) = stream.try_clone() {
        shared.conns.lock().expect("conn registry").insert(conn, registry_half);
    }
    let writer: SharedWriter = Arc::new(Mutex::new(write_half));
    shared.emit(EventBuilder::new(shared, "connected", conn));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if handle_line(shared, conn, &line, &writer).is_err() {
            break;
        }
    }
    disconnect_cleanup(shared, conn);
}

/// Parses and dispatches one request line, writing any immediate
/// responses on `writer` (admitted jobs answer later, from a worker).
/// Both I/O models funnel through here.
///
/// Returns `Err` only when writing to the client failed — the caller
/// must tear the connection down.
fn handle_line(
    shared: &Arc<Shared>,
    conn: u64,
    line: &str,
    writer: &SharedWriter,
) -> io::Result<()> {
    if line.trim().is_empty() {
        return Ok(());
    }
    let response = match Request::parse(line) {
        Err(message) => Some(Response::Error {
            code: ErrorCode::BadRequest,
            id: None,
            message,
        }),
        Ok(Request::Ping) => Some(Response::Pong),
        Ok(Request::Stats) => Some(stats_response(shared)),
        Ok(Request::Metrics) => Some(Response::Metrics {
            text: obs::prometheus::render(&obs::registry_snapshot()),
        }),
        Ok(Request::Shutdown) => {
            let ack = write_line(writer, &Response::ShuttingDown);
            shared.begin_drain();
            ack?;
            None
        }
        Ok(Request::Verify(request)) => admit(shared, conn, request, writer),
        Ok(Request::Batch(jobs)) => {
            // each job is admitted independently; rejections answer
            // immediately (pipelined between the batch's own results),
            // accepted jobs answer from workers in completion order
            for request in jobs {
                if let Some(response) = admit(shared, conn, request, writer) {
                    write_line(writer, &response)?;
                }
            }
            None
        }
    };
    match response {
        Some(response) => write_line(writer, &response),
        None => Ok(()),
    }
}

/// Admission control for one `verify` submission: reject while
/// draining, consult the verdict cache (hit / coalesce / lead), and
/// enqueue. Returns the response to send now, if any (an accepted job
/// answers later, from a worker).
fn admit(
    shared: &Arc<Shared>,
    conn: u64,
    request: VerifyRequest,
    writer: &SharedWriter,
) -> Option<Response> {
    shared.stats.record(Event::Submitted);
    // every submission — admitted or not — gets a job id, so rejection
    // events in the log correlate with their `received` event
    let seq = shared.next_seq.fetch_add(1, Ordering::Relaxed);
    let id = request.id.clone();
    shared.emit(
        EventBuilder::new(shared, "received", conn).job(seq, id.as_deref()),
    );
    if shared.draining.load(Ordering::SeqCst) {
        shared.stats.record(Event::DrainingRejected);
        shared.emit(
            EventBuilder::new(shared, "rejected", conn)
                .job(seq, id.as_deref())
                .field("reason", "draining"),
        );
        return Some(Response::Error {
            code: ErrorCode::Draining,
            id,
            message: "server is draining; no new jobs admitted".into(),
        });
    }
    let cache_key = if shared.config.cache.enabled {
        CacheKey::for_request(&request)
    } else {
        None
    };
    let job = Job {
        seq,
        conn,
        request,
        cancel: CancelToken::new(),
        writer: Arc::clone(writer),
        submitted: Instant::now(),
        cache_key,
    };
    let Some(key) = job.cache_key.clone() else {
        return try_enqueue(shared, job);
    };
    match shared.cache.admit(&key, job) {
        Admit::Hit { verdict, follower } => {
            Some(serve_hit(shared, &verdict, &follower))
        }
        Admit::Coalesced => {
            shared.stats.record(Event::CacheCoalesced);
            shared.emit(
                EventBuilder::new(shared, "coalesced", conn)
                    .job(seq, id.as_deref()),
            );
            None
        }
        Admit::Leader(job) => {
            shared.stats.record(Event::CacheMiss);
            try_enqueue(shared, job)
        }
    }
}

/// Answers a submission from a stored verdict. The hit is a full
/// terminal disposition (counter + event + e2e latency) but its serve
/// time lands in the `cache_hit` series, **not** the `verify`
/// histogram — a µs-scale lookup would poison the ms-scale series.
fn serve_hit(shared: &Arc<Shared>, verdict: &JobResult, job: &Job) -> Response {
    shared.stats.record(Event::CacheHit);
    let (event, terminal) = disposition_for(verdict);
    shared.stats.record(event);
    let served_us = job.submitted.elapsed().as_micros() as u64;
    shared.stats.record_cache_hit_us(served_us);
    shared.stats.record_e2e_us(served_us);
    shared.emit(
        EventBuilder::new(shared, terminal, job.conn)
            .job(job.seq, job.request.id.as_deref())
            .us("e2e_us", served_us)
            .field("served", "cache"),
    );
    let mut result = verdict.clone();
    result.id = job.request.id.clone();
    result.latency_ms = Some(job.submitted.elapsed().as_millis() as u64);
    Response::Result(result)
}

/// Pushes a job into the bounded queue, emitting `admitted` or the
/// rejection. A rejected single-flight leader completes its flight so
/// any followers that raced in behind it are rejected too, not
/// stranded.
fn try_enqueue(shared: &Arc<Shared>, job: Job) -> Option<Response> {
    let seq = job.seq;
    let conn = job.conn;
    let id = job.request.id.clone();
    match shared.queue.push(conn, job) {
        Ok(()) => {
            shared.stats.queue_depth_add(1);
            shared.emit(
                EventBuilder::new(shared, "admitted", conn).job(seq, id.as_deref()),
            );
            None
        }
        Err((kind, job)) => {
            if let Some(key) = &job.cache_key {
                let (followers, _) = shared.cache.complete(key, None);
                for follower in followers {
                    reject_follower(shared, follower, kind);
                }
            }
            Some(rejection(shared, conn, seq, id, kind))
        }
    }
}

/// Records and logs one admission rejection, returning the error
/// response for it.
fn rejection(
    shared: &Arc<Shared>,
    conn: u64,
    seq: u64,
    id: Option<String>,
    kind: PushError,
) -> Response {
    let (event, code, reason, message) = match kind {
        PushError::Full => (
            Event::Overloaded,
            ErrorCode::Overloaded,
            "overloaded",
            format!(
                "queue full (capacity {}); retry later",
                shared.queue.capacity()
            ),
        ),
        PushError::Closed => (
            Event::DrainingRejected,
            ErrorCode::Draining,
            "draining",
            "server is draining; no new jobs admitted".to_string(),
        ),
    };
    shared.stats.record(event);
    shared.emit(
        EventBuilder::new(shared, "rejected", conn)
            .job(seq, id.as_deref())
            .field("reason", reason),
    );
    Response::Error { code, id, message }
}

/// Rejects a parked follower whose leader could not be (re)queued.
fn reject_follower(shared: &Arc<Shared>, job: Job, kind: PushError) {
    let response =
        rejection(shared, job.conn, job.seq, job.request.id.clone(), kind);
    let _ = write_line(&job.writer, &response);
}

/// A single-flight leader vanished without a verdict to fan out (its
/// client disconnected). Promote parked followers into the queue until
/// one sticks; followers the queue rejects are answered with the
/// rejection. When no follower is left the flight dissolves.
fn promote_follower(shared: &Arc<Shared>, key: &CacheKey) {
    while let Some(follower) = shared.cache.leader_gone(key) {
        let seq = follower.seq;
        let conn = follower.conn;
        let id = follower.request.id.clone();
        match shared.queue.push(conn, follower) {
            Ok(()) => {
                shared.stats.queue_depth_add(1);
                shared.emit(
                    EventBuilder::new(shared, "promoted", conn)
                        .job(seq, id.as_deref()),
                );
                return;
            }
            Err((kind, job)) => reject_follower(shared, job, kind),
        }
    }
}

fn disconnect_cleanup(shared: &Arc<Shared>, conn: u64) {
    // running jobs first: flip their cancellation tokens so the checker
    // stops at its next poll…
    for (job_conn, _, token) in shared.running.lock().expect("running registry").iter() {
        if *job_conn == conn {
            token.cancel();
        }
    }
    // …then purge the queued jobs. This order makes the purge counter a
    // fence: once `cancelled_queued` moves, the cancels have landed.
    let purged = shared.queue.purge_client(conn);
    for job in &purged {
        shared.stats.queue_depth_add(-1);
        shared.stats.record(Event::CancelledQueued);
        // a purged job still terminates: it gets a `cancelled` terminal
        // event and lands in the end-to-end histogram like any other
        let e2e_us = job.submitted.elapsed().as_micros() as u64;
        shared.stats.record_e2e_us(e2e_us);
        shared.emit(
            EventBuilder::new(shared, "cancelled", conn)
                .job(job.seq, job.request.id.as_deref())
                .us("e2e_us", e2e_us),
        );
    }
    // followers this client parked behind other leaders terminate the
    // same way (cancelled before service, exactly one disposition)…
    let stranded = shared.cache.purge(|job| job.conn == conn);
    for job in stranded {
        shared.stats.record(Event::CancelledQueued);
        let e2e_us = job.submitted.elapsed().as_micros() as u64;
        shared.stats.record_e2e_us(e2e_us);
        shared.emit(
            EventBuilder::new(shared, "cancelled", conn)
                .job(job.seq, job.request.id.as_deref())
                .us("e2e_us", e2e_us)
                .field("parked", "coalesced"),
        );
    }
    // …and flights led by this client's purged jobs hand over to a
    // surviving follower (running leaders hand over at completion)
    for job in &purged {
        if let Some(key) = &job.cache_key {
            promote_follower(shared, key);
        }
    }
    shared.conns.lock().expect("conn registry").remove(&conn);
    shared.emit(EventBuilder::new(shared, "disconnected", conn));
}

fn stats_response(shared: &Arc<Shared>) -> Response {
    let snap = shared.stats.snapshot();
    let latency = obs::metrics::histogram("satverifyd.job.latency_ms").snapshot();
    Response::Stats(StatsReply {
        counters: snap.named_counters(),
        queue_depth: snap.queue_depth,
        in_flight: snap.in_flight,
        latency_buckets: latency.buckets,
        latency_us: vec![
            ("queue_wait".into(), LatencySummary::from_snapshot(&snap.queue_wait_us)),
            ("verify".into(), LatencySummary::from_snapshot(&snap.verify_us)),
            ("e2e".into(), LatencySummary::from_snapshot(&snap.e2e_us)),
            ("cache_hit".into(), LatencySummary::from_snapshot(&snap.cache_hit_us)),
        ],
        draining: shared.draining.load(Ordering::SeqCst),
    })
}

/// Maps a job result onto its stats counter and terminal event name.
fn disposition_for(result: &JobResult) -> (Event, &'static str) {
    match result.outcome.as_str() {
        "verified" => (Event::Verified, "verified"),
        "rejected" => (Event::Rejected, "rejected"),
        _ => (Event::Exhausted, "exhausted"),
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        shared.stats.queue_depth_add(-1);
        shared.stats.in_flight_add(1);
        let queue_wait_us = job.submitted.elapsed().as_micros() as u64;
        shared.stats.record_queue_wait_us(queue_wait_us);
        shared.emit(
            EventBuilder::new(shared, "started", job.conn)
                .job(job.seq, job.request.id.as_deref())
                .us("queue_wait_us", queue_wait_us),
        );
        shared
            .running
            .lock()
            .expect("running registry")
            .push((job.conn, job.seq, job.cancel.clone()));
        let checking = Instant::now();
        let (response, terminal) = run_job(shared, &job);
        let verify_us = checking.elapsed().as_micros() as u64;
        shared
            .running
            .lock()
            .expect("running registry")
            .retain(|&(_, seq, _)| seq != job.seq);
        shared.stats.in_flight_add(-1);
        shared.stats.record_verify_us(verify_us);
        let e2e_us = job.submitted.elapsed().as_micros() as u64;
        shared.stats.record_e2e_us(e2e_us);
        shared.emit(
            EventBuilder::new(shared, terminal, job.conn)
                .job(job.seq, job.request.id.as_deref())
                .us("verify_us", verify_us)
                .us("e2e_us", e2e_us),
        );
        if let Some(key) = &job.cache_key {
            settle_flight(shared, key, &response);
        }
        // the client may have vanished; a failed write is not an error
        let _ = write_line(&job.writer, &response);
    }
}

/// Completes a single-flight leader's run: stores a deterministic
/// verdict, fans the outcome out to every parked follower, and counts
/// the LRU evictions the insert caused. A leader that stopped because
/// *its own client* cancelled hands the flight to a follower instead —
/// the followers' clients are still waiting and deserve a real run.
fn settle_flight(shared: &Arc<Shared>, key: &CacheKey, response: &Response) {
    let cancelled = matches!(
        response,
        Response::Result(r) if r.exhaust_reason.as_deref() == Some("cancelled")
    );
    if cancelled {
        promote_follower(shared, key);
        return;
    }
    let stored = match response {
        Response::Result(result) if cache::storable(result) => Some(result),
        _ => None,
    };
    let (followers, evictions) = shared.cache.complete(key, stored);
    for _ in 0..evictions {
        shared.stats.record(Event::CacheEviction);
    }
    for follower in followers {
        serve_follower(shared, follower, response);
    }
}

/// Answers one coalesced follower with its leader's outcome: a full
/// terminal disposition under the follower's own `id` and latency.
/// Fan-out latency lands in `e2e` only — the `verify` series stays
/// one-entry-per-actual-run and `cache_hit` stays pure lookups.
fn serve_follower(shared: &Arc<Shared>, follower: Job, response: &Response) {
    let e2e_us = follower.submitted.elapsed().as_micros() as u64;
    let id = follower.request.id.clone();
    let (event, terminal, reply) = match response {
        Response::Result(result) => {
            let (event, terminal) = disposition_for(result);
            let mut out = cache::normalize(result);
            out.id = id.clone();
            out.latency_ms = Some(follower.submitted.elapsed().as_millis() as u64);
            (event, terminal, Response::Result(out))
        }
        Response::Error { code, message, .. } => {
            // the content is the same, so the leader's failure is the
            // follower's failure (a parse error is deterministic; an
            // internal error is honestly reported to everyone)
            let (event, terminal) = match code {
                ErrorCode::Internal => (Event::InternalError, "internal_error"),
                _ => (Event::InvalidInput, "invalid_input"),
            };
            let reply = Response::Error {
                code: *code,
                id: id.clone(),
                message: message.clone(),
            };
            (event, terminal, reply)
        }
        _ => return,
    };
    shared.stats.record(event);
    shared.stats.record_e2e_us(e2e_us);
    shared.emit(
        EventBuilder::new(shared, terminal, follower.conn)
            .job(follower.seq, id.as_deref())
            .us("e2e_us", e2e_us)
            .field("served", "coalesced"),
    );
    let _ = write_line(&follower.writer, &reply);
}

/// Runs one job under its harness, panic-isolated, and maps the result
/// onto a wire response (recording the outcome counter). The second
/// element is the terminal event name for the lifecycle log.
fn run_job(shared: &Arc<Shared>, job: &Job) -> (Response, &'static str) {
    let faults = match &shared.config.faults {
        Some(factory) => factory(job.seq),
        None => FaultPlan::none(),
    };
    let harness = Harness {
        budget: job.request.budget.resolve(&shared.config.default_budget),
        cancel: job.cancel.clone(),
        faults,
        ..Harness::default()
    };
    // the deterministic test hook: may park on a Gate until the test
    // releases it
    harness.faults.before_run();
    let id = job.request.id.clone();
    if job.cancel.is_cancelled() {
        shared.stats.record(Event::Exhausted);
        return (
            Response::Result(JobResult {
                id,
                outcome: "exhausted".into(),
                exhaust_reason: Some("cancelled".into()),
                ..JobResult::default()
            }),
            "exhausted",
        );
    }
    let outcome =
        catch_unwind(AssertUnwindSafe(|| job::execute(&job.request, &harness)));
    match outcome {
        Ok(Ok(mut result)) => {
            let (event, terminal) = disposition_for(&result);
            shared.stats.record(event);
            result.latency_ms = Some(job.submitted.elapsed().as_millis() as u64);
            (Response::Result(result), terminal)
        }
        Ok(Err((code, message))) => {
            shared.stats.record(Event::InvalidInput);
            (Response::Error { code, id, message }, "invalid_input")
        }
        Err(panic) => {
            shared.stats.record(Event::InternalError);
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".into());
            (
                Response::Error {
                    code: ErrorCode::Internal,
                    id,
                    message: format!("job crashed (worker survived): {what}"),
                },
                "internal_error",
            )
        }
    }
}
