//! The daemon: accept loop, per-connection readers, a bounded worker
//! pool, admission control, cancellation on disconnect, and graceful
//! drain.
//!
//! ## Threading model
//!
//! * one **accept** thread;
//! * one **reader** thread per connection — it parses request lines,
//!   answers control requests inline, and admits `verify` jobs into the
//!   bounded [`JobQueue`]; when the connection drops it purges the
//!   client's queued jobs and cancels its running ones;
//! * `workers` **worker** threads popping the queue fairly
//!   (round-robin across clients), each running one job at a time under
//!   a per-job [`Harness`] (budget + [`CancelToken`]), panic-isolated
//!   with `catch_unwind`.
//!
//! Responses are written back on the submitting connection, one JSON
//! line per response, in completion order.
//!
//! ## Drain
//!
//! [`ServerHandle::shutdown`] (or a `shutdown` request) flips the
//! draining flag, closes the queue to new pushes, and wakes the accept
//! loop. Queued and in-flight jobs finish and their responses are
//! delivered; new `verify` requests get a `draining` error;
//! [`ServerHandle::join`] returns once the pool is idle.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use obs::json::Json;
use obs::EventLog;
use proofver::{Budget, CancelToken, FaultPlan, Harness};

use crate::job;
use crate::net::{Endpoint, Listener, Stream};
use crate::protocol::{
    ErrorCode, JobResult, LatencySummary, Request, Response, StatsReply,
    VerifyRequest,
};
use crate::queue::{JobQueue, PushError};
use crate::stats::{Event, ServerStats, StatsSnapshot};

/// Per-job fault-plan factory used by the deterministic service tests:
/// given the job's id (the sequence number assigned at submission —
/// every `verify` request consumes one, including rejected
/// submissions), produce the [`FaultPlan`] its harness runs under.
/// Production servers leave it unset ([`FaultPlan::none`] everywhere).
pub type FaultFactory = Arc<dyn Fn(u64) -> FaultPlan + Send + Sync>;

/// Server tuning knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads checking jobs concurrently (min 1).
    pub workers: usize,
    /// Bounded queue capacity; a full queue answers `overloaded`.
    pub queue_capacity: usize,
    /// Budget applied to jobs that do not set their own; request fields
    /// override individually.
    pub default_budget: Budget,
    /// Test-only fault injection (see [`FaultFactory`]).
    pub faults: Option<FaultFactory>,
    /// Optional JSONL job-lifecycle log (see `docs/OBSERVABILITY.md`).
    pub event_log: Option<Arc<EventLog>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            default_budget: Budget::unlimited(),
            faults: None,
            event_log: None,
        }
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("default_budget", &self.default_budget)
            .field("faults", &self.faults.as_ref().map(|_| "<factory>"))
            .field("event_log", &self.event_log.as_ref().map(|_| "<log>"))
            .finish()
    }
}

impl ServerConfig {
    /// Sets the worker-pool size.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the queue capacity (admission bound).
    #[must_use]
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Sets the default per-job budget.
    #[must_use]
    pub fn default_budget(mut self, budget: Budget) -> Self {
        self.default_budget = budget;
        self
    }

    /// Arms the test-only fault factory.
    #[must_use]
    pub fn fault_factory(mut self, factory: FaultFactory) -> Self {
        self.faults = Some(factory);
        self
    }

    /// Attaches a JSONL job-lifecycle event log.
    #[must_use]
    pub fn event_log(mut self, log: Arc<EventLog>) -> Self {
        self.event_log = Some(log);
        self
    }
}

/// One admitted verification job.
struct Job {
    seq: u64,
    conn: u64,
    request: VerifyRequest,
    cancel: CancelToken,
    writer: SharedWriter,
    submitted: Instant,
}

type SharedWriter = Arc<Mutex<Stream>>;

struct Shared {
    config: ServerConfig,
    queue: JobQueue<Job>,
    stats: ServerStats,
    draining: AtomicBool,
    endpoint: Endpoint,
    /// `(conn, seq, token)` for every job currently inside a worker.
    running: Mutex<Vec<(u64, u64, CancelToken)>>,
    /// A handle per live connection, to half-close at drain completion.
    conns: Mutex<HashMap<u64, Stream>>,
    next_seq: AtomicU64,
    /// Monotonic zero point for event-log timestamps.
    epoch: Instant,
}

/// Builder for one lifecycle event: `{ts_us, event, conn, ...}`.
/// Timestamps are µs since the server's monotonic epoch, so within one
/// log they are totally ordered and subtraction gives durations.
struct EventBuilder(Json);

impl EventBuilder {
    fn new(shared: &Shared, event: &str, conn: u64) -> EventBuilder {
        let mut obj = Json::object();
        push_u64_json(&mut obj, "ts_us", shared.epoch.elapsed().as_micros() as u64);
        obj.push("event", event);
        push_u64_json(&mut obj, "conn", conn);
        EventBuilder(obj)
    }

    fn job(mut self, seq: u64, id: Option<&str>) -> EventBuilder {
        push_u64_json(&mut self.0, "job", seq);
        if let Some(id) = id {
            self.0.push("id", id);
        }
        self
    }

    fn field(mut self, key: &str, value: &str) -> EventBuilder {
        self.0.push(key, value);
        self
    }

    fn us(mut self, key: &str, us: u64) -> EventBuilder {
        push_u64_json(&mut self.0, key, us);
        self
    }
}

fn push_u64_json(obj: &mut Json, key: &str, value: u64) {
    obj.push(key, Json::Int(i64::try_from(value).unwrap_or(i64::MAX)));
}

impl Shared {
    /// Appends one event to the log, if one is attached. Log I/O errors
    /// are swallowed: observability must never take the daemon down.
    fn emit(&self, event: EventBuilder) {
        if let Some(log) = &self.config.event_log {
            let _ = log.append(&event.0);
        }
    }

    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return; // already draining
        }
        // no new pushes; poppers finish the backlog and then exit
        self.queue.close();
        // the accept loop is parked in accept(); poke it awake so it
        // can observe the flag and exit
        let _ = Stream::connect(&self.endpoint);
    }
}

/// The daemon's front door.
pub struct Server;

impl Server {
    /// Binds `endpoint` and starts the accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(endpoint: &Endpoint, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = Listener::bind(endpoint)?;
        let local = listener.local_endpoint()?;
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            stats: ServerStats::new(),
            draining: AtomicBool::new(false),
            endpoint: local.clone(),
            running: Mutex::new(Vec::new()),
            conns: Mutex::new(HashMap::new()),
            next_seq: AtomicU64::new(0),
            epoch: Instant::now(),
            config,
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("satverifyd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("satverifyd-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(ServerHandle { shared, accept: Some(accept), workers })
    }
}

/// A running server: its bound endpoint, drain trigger, and join.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The endpoint actually bound (TCP port 0 resolved).
    #[must_use]
    pub fn local_endpoint(&self) -> Endpoint {
        self.shared.endpoint.clone()
    }

    /// Starts a graceful drain: stop admitting, finish queued and
    /// in-flight jobs. Idempotent; returns immediately.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// A cloneable trigger for starting the drain from another thread
    /// (e.g. a signal or stdin watcher) while this handle blocks in
    /// [`ServerHandle::join`].
    #[must_use]
    pub fn drain_trigger(&self) -> DrainTrigger {
        DrainTrigger { shared: Arc::clone(&self.shared) }
    }

    /// Whether a drain has begun.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// A snapshot of the server's counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Waits for the drain to complete: the accept loop has exited,
    /// every queued and in-flight job has been answered, and the worker
    /// pool is gone. Call [`ServerHandle::shutdown`] first (or let a
    /// client's `shutdown` request do it).
    ///
    /// # Panics
    ///
    /// Panics if the accept or a worker thread itself panicked — a
    /// server bug; job panics are isolated inside the workers and do
    /// *not* end up here.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept loop panicked");
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("worker panicked");
        }
        // lingering clients see EOF instead of a dead silent socket
        for (_, stream) in self.shared.conns.lock().expect("conn registry").drain() {
            stream.shutdown_both();
        }
        // the pool is idle: every lifecycle event has been appended
        if let Some(log) = &self.shared.config.event_log {
            let _ = log.flush();
        }
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.shared.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A cloneable drain trigger detached from the [`ServerHandle`].
#[derive(Clone)]
pub struct DrainTrigger {
    shared: Arc<Shared>,
}

impl DrainTrigger {
    /// Starts the graceful drain (idempotent).
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }
}

fn accept_loop(listener: &Listener, shared: &Arc<Shared>) {
    let mut next_conn = 0u64;
    loop {
        let stream = listener.accept();
        if shared.draining.load(Ordering::SeqCst) {
            // the stream (if any) is the drain poke or a client racing
            // the shutdown; either way, no new connections now
            return;
        }
        let Ok(stream) = stream else { continue };
        let conn = next_conn;
        next_conn += 1;
        let shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name(format!("satverifyd-conn-{conn}"))
            .spawn(move || serve_connection(&shared, conn, stream));
        // reader threads detach: they exit on client EOF, and join()
        // half-closes any that linger past the drain
        drop(spawned);
    }
}

fn write_line(writer: &SharedWriter, response: &Response) -> io::Result<()> {
    let mut line = response.to_line();
    line.push('\n');
    let mut stream = writer.lock().expect("writer lock");
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

fn serve_connection(shared: &Arc<Shared>, conn: u64, stream: Stream) {
    let Ok(write_half) = stream.try_clone() else { return };
    if let Ok(registry_half) = stream.try_clone() {
        shared.conns.lock().expect("conn registry").insert(conn, registry_half);
    }
    let writer: SharedWriter = Arc::new(Mutex::new(write_half));
    shared.emit(EventBuilder::new(shared, "connected", conn));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::parse(&line) {
            Err(message) => Some(Response::Error {
                code: ErrorCode::BadRequest,
                id: None,
                message,
            }),
            Ok(Request::Ping) => Some(Response::Pong),
            Ok(Request::Stats) => Some(stats_response(shared)),
            Ok(Request::Metrics) => Some(Response::Metrics {
                text: obs::prometheus::render(&obs::registry_snapshot()),
            }),
            Ok(Request::Shutdown) => {
                let ack = write_line(&writer, &Response::ShuttingDown);
                shared.begin_drain();
                if ack.is_err() {
                    break;
                }
                None
            }
            Ok(Request::Verify(request)) => admit(shared, conn, request, &writer),
        };
        if let Some(response) = response {
            if write_line(&writer, &response).is_err() {
                break;
            }
        }
    }
    disconnect_cleanup(shared, conn);
}

/// Admission control for one `verify` request: reject while draining,
/// reject when the queue is full, otherwise enqueue. Returns the
/// response to send now, if any (an accepted job answers later, from a
/// worker).
fn admit(
    shared: &Arc<Shared>,
    conn: u64,
    request: VerifyRequest,
    writer: &SharedWriter,
) -> Option<Response> {
    shared.stats.record(Event::Submitted);
    // every submission — admitted or not — gets a job id, so rejection
    // events in the log correlate with their `received` event
    let seq = shared.next_seq.fetch_add(1, Ordering::Relaxed);
    let id = request.id.clone();
    shared.emit(
        EventBuilder::new(shared, "received", conn).job(seq, id.as_deref()),
    );
    if shared.draining.load(Ordering::SeqCst) {
        shared.stats.record(Event::DrainingRejected);
        shared.emit(
            EventBuilder::new(shared, "rejected", conn)
                .job(seq, id.as_deref())
                .field("reason", "draining"),
        );
        return Some(Response::Error {
            code: ErrorCode::Draining,
            id,
            message: "server is draining; no new jobs admitted".into(),
        });
    }
    let job = Job {
        seq,
        conn,
        request,
        cancel: CancelToken::new(),
        writer: Arc::clone(writer),
        submitted: Instant::now(),
    };
    match shared.queue.push(conn, job) {
        Ok(()) => {
            shared.stats.queue_depth_add(1);
            shared.emit(
                EventBuilder::new(shared, "admitted", conn).job(seq, id.as_deref()),
            );
            None
        }
        Err((PushError::Full, _)) => {
            shared.stats.record(Event::Overloaded);
            shared.emit(
                EventBuilder::new(shared, "rejected", conn)
                    .job(seq, id.as_deref())
                    .field("reason", "overloaded"),
            );
            Some(Response::Error {
                code: ErrorCode::Overloaded,
                id,
                message: format!(
                    "queue full (capacity {}); retry later",
                    shared.queue.capacity()
                ),
            })
        }
        Err((PushError::Closed, _)) => {
            shared.stats.record(Event::DrainingRejected);
            shared.emit(
                EventBuilder::new(shared, "rejected", conn)
                    .job(seq, id.as_deref())
                    .field("reason", "draining"),
            );
            Some(Response::Error {
                code: ErrorCode::Draining,
                id,
                message: "server is draining; no new jobs admitted".into(),
            })
        }
    }
}

fn disconnect_cleanup(shared: &Arc<Shared>, conn: u64) {
    // running jobs first: flip their cancellation tokens so the checker
    // stops at its next poll…
    for (job_conn, _, token) in shared.running.lock().expect("running registry").iter() {
        if *job_conn == conn {
            token.cancel();
        }
    }
    // …then purge the queued jobs. This order makes the purge counter a
    // fence: once `cancelled_queued` moves, the cancels have landed.
    let purged = shared.queue.purge_client(conn);
    for job in &purged {
        shared.stats.queue_depth_add(-1);
        shared.stats.record(Event::CancelledQueued);
        // a purged job still terminates: it gets a `cancelled` terminal
        // event and lands in the end-to-end histogram like any other
        let e2e_us = job.submitted.elapsed().as_micros() as u64;
        shared.stats.record_e2e_us(e2e_us);
        shared.emit(
            EventBuilder::new(shared, "cancelled", conn)
                .job(job.seq, job.request.id.as_deref())
                .us("e2e_us", e2e_us),
        );
    }
    shared.conns.lock().expect("conn registry").remove(&conn);
    shared.emit(EventBuilder::new(shared, "disconnected", conn));
}

fn stats_response(shared: &Arc<Shared>) -> Response {
    let snap = shared.stats.snapshot();
    let latency = obs::metrics::histogram("satverifyd.job.latency_ms").snapshot();
    Response::Stats(StatsReply {
        counters: snap.named_counters(),
        queue_depth: snap.queue_depth,
        in_flight: snap.in_flight,
        latency_buckets: latency.buckets,
        latency_us: vec![
            ("queue_wait".into(), LatencySummary::from_snapshot(&snap.queue_wait_us)),
            ("verify".into(), LatencySummary::from_snapshot(&snap.verify_us)),
            ("e2e".into(), LatencySummary::from_snapshot(&snap.e2e_us)),
        ],
    })
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        shared.stats.queue_depth_add(-1);
        shared.stats.in_flight_add(1);
        let queue_wait_us = job.submitted.elapsed().as_micros() as u64;
        shared.stats.record_queue_wait_us(queue_wait_us);
        shared.emit(
            EventBuilder::new(shared, "started", job.conn)
                .job(job.seq, job.request.id.as_deref())
                .us("queue_wait_us", queue_wait_us),
        );
        shared
            .running
            .lock()
            .expect("running registry")
            .push((job.conn, job.seq, job.cancel.clone()));
        let checking = Instant::now();
        let (response, terminal) = run_job(shared, &job);
        let verify_us = checking.elapsed().as_micros() as u64;
        shared
            .running
            .lock()
            .expect("running registry")
            .retain(|&(_, seq, _)| seq != job.seq);
        shared.stats.in_flight_add(-1);
        shared.stats.record_verify_us(verify_us);
        let e2e_us = job.submitted.elapsed().as_micros() as u64;
        shared.stats.record_e2e_us(e2e_us);
        shared.emit(
            EventBuilder::new(shared, terminal, job.conn)
                .job(job.seq, job.request.id.as_deref())
                .us("verify_us", verify_us)
                .us("e2e_us", e2e_us),
        );
        // the client may have vanished; a failed write is not an error
        let _ = write_line(&job.writer, &response);
    }
}

/// Runs one job under its harness, panic-isolated, and maps the result
/// onto a wire response (recording the outcome counter). The second
/// element is the terminal event name for the lifecycle log.
fn run_job(shared: &Arc<Shared>, job: &Job) -> (Response, &'static str) {
    let faults = match &shared.config.faults {
        Some(factory) => factory(job.seq),
        None => FaultPlan::none(),
    };
    let harness = Harness {
        budget: job.request.budget.resolve(&shared.config.default_budget),
        cancel: job.cancel.clone(),
        faults,
        ..Harness::default()
    };
    // the deterministic test hook: may park on a Gate until the test
    // releases it
    harness.faults.before_run();
    let id = job.request.id.clone();
    if job.cancel.is_cancelled() {
        shared.stats.record(Event::Exhausted);
        return (
            Response::Result(JobResult {
                id,
                outcome: "exhausted".into(),
                exhaust_reason: Some("cancelled".into()),
                ..JobResult::default()
            }),
            "exhausted",
        );
    }
    let outcome =
        catch_unwind(AssertUnwindSafe(|| job::execute(&job.request, &harness)));
    match outcome {
        Ok(Ok(mut result)) => {
            let (event, terminal) = match result.outcome.as_str() {
                "verified" => (Event::Verified, "verified"),
                "rejected" => (Event::Rejected, "rejected"),
                _ => (Event::Exhausted, "exhausted"),
            };
            shared.stats.record(event);
            result.latency_ms = Some(job.submitted.elapsed().as_millis() as u64);
            (Response::Result(result), terminal)
        }
        Ok(Err((code, message))) => {
            shared.stats.record(Event::InvalidInput);
            (Response::Error { code, id, message }, "invalid_input")
        }
        Err(panic) => {
            shared.stats.record(Event::InternalError);
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".into());
            (
                Response::Error {
                    code: ErrorCode::Internal,
                    id,
                    message: format!("job crashed (worker survived): {what}"),
                },
                "internal_error",
            )
        }
    }
}
