//! Readiness-driven connection I/O: one thread `poll(2)`s the listener
//! and every connection, so idle connections cost a few hundred bytes
//! of buffer instead of a parked thread each.
//!
//! The reactor owns the **read** side only: it accepts, buffers bytes
//! per connection, splits complete lines, and dispatches them through
//! the same [`handle_line`] the threaded model uses. Responses are
//! written by whichever thread completes them (control replies by the
//! reactor itself, job results by workers) through the shared
//! per-connection writer; the non-blocking flag lives on the file
//! description, so those writers park in `poll(2)` on `WouldBlock`
//! (see `write_all_stream`).
//!
//! ## Drain and exit
//!
//! The listener is dropped as soon as the draining flag is observed —
//! *before* accepting — so the drain poke (or a client racing the
//! shutdown) never becomes a connection and never emits lifecycle
//! events. The thread exits when `Shared::stop` is set (the workers
//! are gone), sweeping every remaining connection through
//! [`disconnect_cleanup`] so each one still gets its `disconnected`
//! event.

use std::io::{self, Read};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use minipoll::{PollFd, POLLIN};

use super::{disconnect_cleanup, handle_line, EventBuilder, Shared, SharedWriter};
use crate::net::{Listener, Stream};

/// Poll timeout: the upper bound on how stale the draining/stop flags
/// can get when no I/O happens.
const POLL_TIMEOUT_MS: i32 = 25;

/// Bytes read per `read(2)` call on a ready connection.
const READ_CHUNK: usize = 16 * 1024;

/// A connection that accumulates this much without a newline is not
/// speaking the protocol (or is trying to exhaust memory) and is
/// dropped. Generous: inline formulas and batches are one line each.
const MAX_LINE_BYTES: usize = 256 * 1024 * 1024;

struct Conn {
    id: u64,
    /// The read half. Same file description as the writer clones.
    stream: Stream,
    writer: SharedWriter,
    /// Bytes received but not yet terminated by a newline.
    buf: Vec<u8>,
}

/// The reactor thread body. Exits when `shared.stop` is set.
pub(super) fn run(listener: Listener, shared: &Arc<Shared>) {
    if listener.set_nonblocking(true).is_err() {
        // a listener that cannot be polled gets the threaded model
        super::accept_loop(&listener, shared);
        return;
    }
    let loop_us = obs::metrics::histogram("satverifyd.reactor.loop_us");
    let connections = obs::metrics::gauge("satverifyd.reactor.connections");
    let mut listener = Some(listener);
    let mut conns: Vec<Conn> = Vec::new();
    let mut next_conn = 0u64;
    let mut fds: Vec<PollFd> = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            for conn in conns.drain(..) {
                connections.add(-1);
                disconnect_cleanup(shared, conn.id);
            }
            return;
        }
        if shared.draining.load(Ordering::SeqCst) {
            listener = None;
        }
        fds.clear();
        if let Some(listener) = &listener {
            fds.push(PollFd::new(listener.raw_fd(), POLLIN));
        }
        for conn in &conns {
            fds.push(PollFd::new(conn.stream.raw_fd(), POLLIN));
        }
        let ready = match minipoll::poll(&mut fds, POLL_TIMEOUT_MS) {
            Ok(n) => n,
            // EINTR is retried inside the shim; anything else here is
            // transient fd churn — re-derive the set and try again
            Err(_) => continue,
        };
        if ready == 0 {
            continue;
        }
        let woke = Instant::now();
        // connections accepted below land at the end of `conns` with no
        // pollfd this round; only the first `polled` slots pair with fds
        let polled = conns.len();
        let mut base = 0;
        if let Some(listener) = &listener {
            if fds[0].readable() {
                accept_ready(shared, listener, &mut conns, &mut next_conn, &connections);
            }
            base = 1;
        }
        let mut closed = Vec::new();
        for slot in 0..polled {
            if fds[base + slot].readable() && !service_conn(shared, &mut conns[slot]) {
                closed.push(slot);
            }
        }
        for slot in closed.into_iter().rev() {
            let conn = conns.remove(slot);
            connections.add(-1);
            disconnect_cleanup(shared, conn.id);
        }
        loop_us.record(woke.elapsed().as_micros() as u64);
    }
}

/// Accepts until the listener would block. Connections that land after
/// the drain began (the poke, or a client racing shutdown) are dropped
/// unregistered, exactly like the threaded accept loop.
fn accept_ready(
    shared: &Arc<Shared>,
    listener: &Listener,
    conns: &mut Vec<Conn>,
    next_conn: &mut u64,
    connections: &obs::metrics::Gauge,
) {
    loop {
        let stream = match listener.accept() {
            Ok(stream) => stream,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return, // WouldBlock, or transient accept failure
        };
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let Ok(write_half) = stream.try_clone() else { continue };
        let id = *next_conn;
        *next_conn += 1;
        if let Ok(registry_half) = stream.try_clone() {
            shared.conns.lock().expect("conn registry").insert(id, registry_half);
        }
        shared.emit(EventBuilder::new(shared, "connected", id));
        connections.add(1);
        conns.push(Conn {
            id,
            stream,
            writer: Arc::new(Mutex::new(write_half)),
            buf: Vec::new(),
        });
    }
}

/// Drains a readable connection: reads until `WouldBlock` or EOF,
/// dispatching every complete line. Returns whether the connection
/// stays open.
fn service_conn(shared: &Arc<Shared>, conn: &mut Conn) -> bool {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // EOF. A final unterminated line is still served, to
                // match BufReader::lines in the threaded model.
                if !conn.buf.is_empty() {
                    let line = String::from_utf8_lossy(&conn.buf).into_owned();
                    conn.buf.clear();
                    let _ = handle_line(shared, conn.id, &line, &conn.writer);
                }
                return false;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                if !dispatch_lines(shared, conn) {
                    return false;
                }
                if conn.buf.len() > MAX_LINE_BYTES {
                    return false;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(_) => return false,
        }
    }
}

/// Splits and handles every complete line in the buffer. Returns
/// whether the connection stays open (a failed response write closes
/// it).
fn dispatch_lines(shared: &Arc<Shared>, conn: &mut Conn) -> bool {
    while let Some(pos) = conn.buf.iter().position(|&b| b == b'\n') {
        let mut line: Vec<u8> = conn.buf.drain(..=pos).collect();
        line.pop(); // the newline
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        let text = String::from_utf8_lossy(&line);
        if handle_line(shared, conn.id, &text, &conn.writer).is_err() {
            return false;
        }
    }
    true
}
