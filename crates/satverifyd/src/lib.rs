//! `satverifyd` — proof verification as a long-lived service.
//!
//! The paper's argument is that UNSAT answers should be certified by an
//! *independent, trusted* checker. At production scale that checker is
//! not a one-shot CLI but shared infrastructure: many solvers submit
//! (formula, proof) pairs, and checking throughput — not solving — is
//! the bottleneck. This crate provides the serving layer on top of the
//! fault-tolerant runtime from [`proofver`]:
//!
//! * a newline-delimited JSON protocol over TCP or Unix sockets
//!   ([`protocol`], spec in `docs/PROTOCOL.md`);
//! * a bounded job queue with **admission control** — a full queue
//!   answers `overloaded` immediately instead of buffering without
//!   bound ([`queue`]);
//! * **fair scheduling** across client connections (round-robin over
//!   per-client FIFO queues), so one chatty client cannot starve the
//!   rest;
//! * per-job [`proofver::Budget`] / deadline enforcement, and
//!   cooperative **cancellation** when the submitting client
//!   disconnects ([`proofver::CancelToken`]);
//! * a `stats` request wired to the [`obs`] metrics registry: queue
//!   depth, jobs in flight, outcome counters, latency histograms with
//!   µs percentile summaries (queue wait, verify time, end-to-end);
//! * an optional JSONL job-lifecycle **event log** ([`obs::EventLog`])
//!   tracing every submission from `received` to exactly one terminal
//!   disposition, and a `metrics` request answering with the registry
//!   in Prometheus text exposition (schema in `docs/OBSERVABILITY.md`);
//! * **graceful drain**: a `shutdown` request (or
//!   [`ServerHandle::shutdown`]) stops admissions, finishes queued and
//!   in-flight jobs, and exits cleanly;
//! * a **content-addressed verdict cache** ([`cache`]) — a byte-budget
//!   LRU keyed on the full job content, with single-flight coalescing
//!   of identical in-flight jobs: a hit is byte-identical to a fresh
//!   verdict, still counts exactly one disposition, and lands in its
//!   own `cache_hit` latency series;
//! * an additive **`batch` op** submitting many jobs in one line with
//!   all-or-nothing validation and per-job completion-order responses;
//! * **readiness-driven I/O** (`server::reactor`, default on unix):
//!   one thread `poll(2)`s every connection, so idle clients cost
//!   buffers instead of parked threads — thread-per-connection remains
//!   selectable via [`IoModel`];
//! * a **sharding front tier** ([`router`], CLI `satverify route`)
//!   hashing jobs by formula content to a static backend pool, with
//!   health probing and drain/EOF failover so no submission loses its
//!   disposition.
//!
//! The verdict taxonomy is exactly the CLI's: `verified`, `rejected`,
//! or `exhausted` — a job that ran out of budget is *never* reported as
//! either verdict.
//!
//! # Example
//!
//! ```
//! use satverifyd::{Client, Endpoint, Request, Response, Server, ServerConfig};
//!
//! let handle = Server::bind(&Endpoint::tcp("127.0.0.1:0"), ServerConfig::default())?;
//! let mut client = Client::connect(&handle.local_endpoint())?;
//! let response = client.request(&Request::verify_inline(
//!     "p cnf 2 4\n1 2 0\n-1 -2 0\n1 -2 0\n-1 2 0\n",
//!     "2 0\n-2 0\n0\n",
//! ))?;
//! assert!(matches!(response, Response::Result(r) if r.outcome == "verified"));
//! handle.shutdown();
//! handle.join();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod job;
pub mod net;
pub mod protocol;
pub mod queue;
pub mod router;
pub mod server;
pub mod stats;

pub use cache::{CacheConfig, CacheKey, VerdictCache, DEFAULT_CACHE_BYTES};
pub use client::{Client, RetryPolicy};
pub use net::Endpoint;
pub use protocol::{
    BudgetSpec, ErrorCode, JobResult, LatencySummary, Request, Response,
    StatsReply, VerifyRequest, PROTOCOL_VERSION,
};
pub use queue::{JobQueue, PushError};
pub use router::{Router, RouterConfig, RouterHandle};
pub use server::{
    DrainTrigger, FaultFactory, IoModel, Server, ServerConfig, ServerHandle,
};
pub use stats::{ServerStats, StatsSnapshot};
