//! A blocking line-protocol client for `satverifyd`.
//!
//! One connection carries any number of requests; responses arrive in
//! completion order, each tagged with the submitting request's `id`, so
//! a caller pipelining several `verify` requests matches responses by
//! id, not position.

use std::io::{self, BufRead, BufReader, Write};
use std::time::Duration;

use crate::net::{Endpoint, Stream};
use crate::protocol::{Request, Response};

/// How [`Client::connect_with_retry`] paces reconnection attempts:
/// capped exponential backoff with jitter. A daemon that is restarting
/// or still binding its socket refuses connections for a moment; a
/// client that gives up on the first `ECONNREFUSED` turns that blip
/// into a spurious failure.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total connection attempts (including the first). `1` disables
    /// retrying.
    pub attempts: u32,
    /// Delay before the second attempt; doubles each retry.
    pub base_delay: Duration,
    /// Ceiling on the per-retry delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// A policy that tries exactly once.
    #[must_use]
    pub fn no_retry() -> Self {
        RetryPolicy { attempts: 1, ..RetryPolicy::default() }
    }
}

/// Whether a connect error is the transient kind retrying can fix
/// (daemon restarting, listen backlog full) rather than a permanent
/// one (bad address, permission denied).
fn is_transient(error: &io::Error) -> bool {
    matches!(
        error.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
    )
}

/// Scales `delay` by a pseudo-random factor in [0.5, 1.0] so a fleet
/// of clients retrying against one recovering daemon does not stampede
/// in lockstep. Seeded from the process id and the monotonic-ish clock;
/// cryptographic quality is beside the point here.
fn jittered(delay: Duration) -> Duration {
    let seed = std::process::id() as u64 ^ {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.subsec_nanos() as u64)
    };
    // one xorshift round is plenty to decorrelate pids
    let mut x = seed | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let factor = 0.5 + (x % 1024) as f64 / 2048.0;
    delay.mul_f64(factor)
}

/// A connected client (see module docs).
pub struct Client {
    writer: Stream,
    reader: BufReader<Stream>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        let stream = Stream::connect(endpoint)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { writer: stream, reader })
    }

    /// Connects to a daemon, retrying transient failures (connection
    /// refused/reset/aborted) under `policy`'s capped exponential
    /// backoff with jitter. Non-transient errors are returned
    /// immediately.
    ///
    /// # Errors
    ///
    /// The last connect failure once the attempt budget is spent, or
    /// the first non-transient failure.
    pub fn connect_with_retry(
        endpoint: &Endpoint,
        policy: &RetryPolicy,
    ) -> io::Result<Client> {
        let mut delay = policy.base_delay;
        let mut last_error = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(jittered(delay));
                delay = (delay * 2).min(policy.max_delay);
            }
            match Client::connect(endpoint) {
                Ok(client) => return Ok(client),
                Err(e) if is_transient(&e) => last_error = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_error.unwrap_or_else(|| {
            io::Error::other("no connection attempts made")
        }))
    }

    /// Sends one request line without waiting for a response — use for
    /// pipelining, paired with [`Client::recv`].
    ///
    /// # Errors
    ///
    /// Propagates the socket write failure.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Reads the next response line, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` if the server closed the connection, or
    /// `InvalidData` naming the parse failure on a malformed line.
    pub fn recv(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if !line.trim().is_empty() {
                break;
            }
        }
        Response::parse(line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Sends one request and waits for the next response. Only sound
    /// when no other requests are in flight on this connection (a
    /// pipelined caller would receive *their* response here).
    ///
    /// # Errors
    ///
    /// Any [`Client::send`] or [`Client::recv`] failure.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.send(request)?;
        self.recv()
    }

    /// Half-closes the write side: the server sees EOF (and cancels
    /// this client's queued and running jobs) while `self` can still
    /// read any responses already in flight.
    pub fn finish_sending(&mut self) {
        self.writer.shutdown_write();
    }
}
