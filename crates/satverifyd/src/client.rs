//! A blocking line-protocol client for `satverifyd`.
//!
//! One connection carries any number of requests; responses arrive in
//! completion order, each tagged with the submitting request's `id`, so
//! a caller pipelining several `verify` requests matches responses by
//! id, not position.

use std::io::{self, BufRead, BufReader, Write};

use crate::net::{Endpoint, Stream};
use crate::protocol::{Request, Response};

/// A connected client (see module docs).
pub struct Client {
    writer: Stream,
    reader: BufReader<Stream>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        let stream = Stream::connect(endpoint)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { writer: stream, reader })
    }

    /// Sends one request line without waiting for a response — use for
    /// pipelining, paired with [`Client::recv`].
    ///
    /// # Errors
    ///
    /// Propagates the socket write failure.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Reads the next response line, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` if the server closed the connection, or
    /// `InvalidData` naming the parse failure on a malformed line.
    pub fn recv(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if !line.trim().is_empty() {
                break;
            }
        }
        Response::parse(line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Sends one request and waits for the next response. Only sound
    /// when no other requests are in flight on this connection (a
    /// pipelined caller would receive *their* response here).
    ///
    /// # Errors
    ///
    /// Any [`Client::send`] or [`Client::recv`] failure.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.send(request)?;
        self.recv()
    }

    /// Half-closes the write side: the server sees EOF (and cancels
    /// this client's queued and running jobs) while `self` can still
    /// read any responses already in flight.
    pub fn finish_sending(&mut self) {
        self.writer.shutdown_write();
    }
}
