//! The sharding front tier: `satverify route` speaks the same wire
//! protocol as the daemon and forwards each job to one of a static
//! pool of backends, chosen by hashing the job's formula.
//!
//! ## Routing
//!
//! [`shard_index`] hashes the formula *content* (or the `formula_path`
//! for by-path jobs) with FNV-1a, so identical formulas always land on
//! the same backend — which is what makes each backend's verdict cache
//! effective: a fleet's duplicate submissions concentrate instead of
//! spraying across the pool. When the home shard is unhealthy the
//! router walks forward to the next healthy backend.
//!
//! ## Health and failover
//!
//! A prober thread polls every backend with a `stats` request
//! (deadline-bounded) and marks it unhealthy on connect failure or a
//! `draining: true` reply. Two failure paths re-route *live* jobs with
//! zero lost dispositions:
//!
//! * a backend answers a forwarded job with a `draining` error — the
//!   job is immediately re-routed to another healthy backend;
//! * a backend connection drops (crash or drain completion) — every
//!   outstanding job it held is re-routed.
//!
//! When no healthy backend remains, the client gets an `overloaded`
//! error: an explicit disposition, never silence.
//!
//! ## What is answered locally
//!
//! `ping`, `stats` (routing counters, see `docs/OBSERVABILITY.md`),
//! `metrics`, and `shutdown` (drains the *router*; backends keep
//! running). `verify` and `batch` jobs are forwarded; responses stream
//! back in completion order with the client's own `id`s restored.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::json::Json;
use obs::EventLog;

use crate::cache::fnv1a64;
use crate::net::{Endpoint, Listener, Stream};
use crate::protocol::{
    ErrorCode, Request, Response, StatsReply, VerifyRequest,
};

/// Picks the home backend for `request` among `shards` backends:
/// FNV-1a over the formula content (or the `formula_path` when the
/// formula is by-path), modulo the pool size. Deterministic and stable
/// across router restarts, so tests and operators can predict
/// placement.
#[must_use]
pub fn shard_index(request: &VerifyRequest, shards: usize) -> usize {
    let bytes = request
        .formula
        .as_deref()
        .or(request.formula_path.as_deref())
        .unwrap_or("")
        .as_bytes();
    (fnv1a64(bytes) % shards.max(1) as u64) as usize
}

/// Router tuning knobs.
#[derive(Clone)]
pub struct RouterConfig {
    /// The static backend pool (order defines shard indices).
    pub backends: Vec<Endpoint>,
    /// How often the prober re-checks backend health.
    pub health_interval: Duration,
    /// Deadline for one health probe round-trip.
    pub probe_timeout: Duration,
    /// Optional JSONL routing event log.
    pub event_log: Option<Arc<EventLog>>,
}

impl RouterConfig {
    /// A config routing to `backends` with default probing.
    #[must_use]
    pub fn new(backends: Vec<Endpoint>) -> RouterConfig {
        RouterConfig {
            backends,
            health_interval: Duration::from_millis(200),
            probe_timeout: Duration::from_millis(500),
            event_log: None,
        }
    }

    /// Sets the health-probe interval.
    #[must_use]
    pub fn health_interval(mut self, interval: Duration) -> Self {
        self.health_interval = interval;
        self
    }

    /// Attaches a JSONL routing event log.
    #[must_use]
    pub fn event_log(mut self, log: Arc<EventLog>) -> Self {
        self.event_log = Some(log);
        self
    }
}

impl std::fmt::Debug for RouterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterConfig")
            .field("backends", &self.backends)
            .field("health_interval", &self.health_interval)
            .field("probe_timeout", &self.probe_timeout)
            .field("event_log", &self.event_log.as_ref().map(|_| "<log>"))
            .finish()
    }
}

struct RouterShared {
    config: RouterConfig,
    endpoint: Endpoint,
    healthy: Vec<AtomicBool>,
    forwarded: Vec<AtomicU64>,
    failovers: AtomicU64,
    unroutable: AtomicU64,
    submitted: AtomicU64,
    draining: AtomicBool,
    stop: AtomicBool,
    epoch: Instant,
}

impl RouterShared {
    fn emit(&self, event: &str, fill: impl FnOnce(&mut Json)) {
        let Some(log) = &self.config.event_log else { return };
        let mut obj = Json::object();
        obj.push(
            "ts_us",
            Json::Int(
                i64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(i64::MAX),
            ),
        );
        obj.push("event", event);
        fill(&mut obj);
        let _ = log.append(&obj);
    }

    fn set_health(&self, backend: usize, healthy: bool) {
        let was = self.healthy[backend].swap(healthy, Ordering::SeqCst);
        if was != healthy {
            self.emit("backend_health", |obj| {
                obj.push("backend", Json::Int(backend as i64));
                obj.push("healthy", Json::Bool(healthy));
            });
        }
    }

    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // wake the acceptor so it can observe the flag and exit
        let _ = Stream::connect(&self.endpoint);
    }
}

/// The front tier's front door.
pub struct Router;

impl Router {
    /// Binds `listen`, probes every backend once (so routing decisions
    /// are meaningful immediately), and starts the accept loop and
    /// health prober.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, or rejects an empty backend pool.
    pub fn bind(listen: &Endpoint, config: RouterConfig) -> io::Result<RouterHandle> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let listener = Listener::bind(listen)?;
        let local = listener.local_endpoint()?;
        let n = config.backends.len();
        let shared = Arc::new(RouterShared {
            endpoint: local,
            healthy: (0..n).map(|_| AtomicBool::new(false)).collect(),
            forwarded: (0..n).map(|_| AtomicU64::new(0)).collect(),
            failovers: AtomicU64::new(0),
            unroutable: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            epoch: Instant::now(),
            config,
        });
        probe_round(&shared);
        let prober = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("satverify-route-health".into())
                .spawn(move || health_loop(&shared))
                .expect("spawn prober")
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("satverify-route-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(RouterHandle { shared, accept: Some(accept), prober: Some(prober) })
    }
}

/// A running router: endpoint, drain, counters, join.
pub struct RouterHandle {
    shared: Arc<RouterShared>,
    accept: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The endpoint actually bound (TCP port 0 resolved).
    #[must_use]
    pub fn local_endpoint(&self) -> Endpoint {
        self.shared.endpoint.clone()
    }

    /// Stops accepting new client connections (idempotent). Live
    /// connections keep relaying until their clients disconnect.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Whether a drain has begun.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Current backend health, by shard index.
    #[must_use]
    pub fn backend_health(&self) -> Vec<bool> {
        self.shared
            .healthy
            .iter()
            .map(|flag| flag.load(Ordering::SeqCst))
            .collect()
    }

    /// Routing counters: `submitted`, `forwarded_backend_<i>`,
    /// `failovers`, `unroutable`.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        router_counters(&self.shared)
    }

    /// Waits for the acceptor and prober to exit. Call
    /// [`RouterHandle::shutdown`] first (or let a client's `shutdown`
    /// request do it). Relay threads for live client connections
    /// detach and die with their connections.
    ///
    /// # Panics
    ///
    /// Panics if the acceptor or prober thread itself panicked.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            accept.join().expect("acceptor panicked");
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(prober) = self.prober.take() {
            prober.join().expect("prober panicked");
        }
        if let Some(log) = &self.shared.config.event_log {
            let _ = log.flush();
        }
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.shared.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn router_counters(shared: &RouterShared) -> Vec<(String, u64)> {
    let mut counters =
        vec![("submitted".to_string(), shared.submitted.load(Ordering::SeqCst))];
    for (i, n) in shared.forwarded.iter().enumerate() {
        counters.push((format!("forwarded_backend_{i}"), n.load(Ordering::SeqCst)));
    }
    counters.push(("failovers".into(), shared.failovers.load(Ordering::SeqCst)));
    counters.push(("unroutable".into(), shared.unroutable.load(Ordering::SeqCst)));
    counters
}

fn health_loop(shared: &Arc<RouterShared>) {
    let mut last = Instant::now();
    while !shared.stop.load(Ordering::SeqCst) {
        // sleep in short steps so join() is never stuck a full interval
        std::thread::sleep(Duration::from_millis(25));
        if last.elapsed() >= shared.config.health_interval {
            probe_round(shared);
            last = Instant::now();
        }
    }
}

fn probe_round(shared: &Arc<RouterShared>) {
    for (i, endpoint) in shared.config.backends.iter().enumerate() {
        let healthy =
            probe(endpoint, shared.config.probe_timeout).unwrap_or(false);
        shared.set_health(i, healthy);
    }
}

/// One health probe: connect, ask `stats`, and read the draining flag.
/// `Ok(false)` means "listening but draining" — routable never.
fn probe(endpoint: &Endpoint, timeout: Duration) -> io::Result<bool> {
    let stream = Stream::connect(endpoint)?;
    stream.set_read_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(format!("{}\n", Request::Stats.to_line()).as_bytes())?;
    writer.flush()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    match Response::parse(line.trim_end()) {
        Ok(Response::Stats(reply)) => Ok(!reply.draining),
        _ => Ok(false),
    }
}

fn accept_loop(listener: &Listener, shared: &Arc<RouterShared>) {
    loop {
        let stream = listener.accept();
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("satverify-route-conn".into())
            .spawn(move || serve_client(&shared, stream));
        drop(spawned);
    }
}

/// One forwarded job awaiting its backend's answer. `request` keeps
/// the client's original `id` and the full body, so the job can be
/// re-routed intact if its backend fails.
struct PendingJob {
    request: VerifyRequest,
    backend: usize,
}

/// An open connection to one backend, relaying for one client.
struct Link {
    writer: Arc<Mutex<Stream>>,
}

/// Per-client-connection relay state, shared with the pump threads
/// that read backend responses.
struct ConnCtx {
    shared: Arc<RouterShared>,
    client: Arc<Mutex<Stream>>,
    links: Mutex<Vec<Option<Link>>>,
    pending: Mutex<HashMap<u64, PendingJob>>,
    next_rid: AtomicU64,
    /// Set when the client disconnects: pump threads stop failing over
    /// and just exit.
    closed: AtomicBool,
}

impl ConnCtx {
    fn write_client(&self, response: &Response) -> io::Result<()> {
        let mut line = response.to_line();
        line.push('\n');
        let mut stream = self.client.lock().expect("client writer");
        stream.write_all(line.as_bytes())?;
        stream.flush()
    }
}

fn serve_client(shared: &Arc<RouterShared>, stream: Stream) {
    let Ok(write_half) = stream.try_clone() else { return };
    let ctx = Arc::new(ConnCtx {
        shared: Arc::clone(shared),
        client: Arc::new(Mutex::new(write_half)),
        links: Mutex::new((0..shared.config.backends.len()).map(|_| None).collect()),
        pending: Mutex::new(HashMap::new()),
        next_rid: AtomicU64::new(0),
        closed: AtomicBool::new(false),
    });
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if handle_client_line(&ctx, &line).is_err() {
            break;
        }
    }
    // client gone: drop every backend link so the daemons see EOF and
    // cancel this client's outstanding jobs (cancellation propagates
    // through the tier)
    ctx.closed.store(true, Ordering::SeqCst);
    let mut links = ctx.links.lock().expect("links");
    for link in links.iter_mut() {
        if let Some(link) = link.take() {
            link.writer.lock().expect("backend writer").shutdown_both();
        }
    }
}

/// Returns `Err` only when writing to the client failed.
fn handle_client_line(ctx: &Arc<ConnCtx>, line: &str) -> io::Result<()> {
    let response = match Request::parse(line) {
        Err(message) => Some(Response::Error {
            code: ErrorCode::BadRequest,
            id: None,
            message,
        }),
        Ok(Request::Ping) => Some(Response::Pong),
        Ok(Request::Stats) => Some(Response::Stats(StatsReply {
            counters: router_counters(&ctx.shared),
            draining: ctx.shared.draining.load(Ordering::SeqCst),
            ..StatsReply::default()
        })),
        Ok(Request::Metrics) => Some(Response::Metrics {
            text: obs::prometheus::render(&obs::registry_snapshot()),
        }),
        Ok(Request::Shutdown) => {
            let ack = ctx.write_client(&Response::ShuttingDown);
            ctx.shared.begin_drain();
            ack?;
            None
        }
        Ok(Request::Verify(request)) => submit(ctx, request),
        Ok(Request::Batch(jobs)) => {
            for request in jobs {
                if let Some(response) = submit(ctx, request) {
                    ctx.write_client(&response)?;
                }
            }
            None
        }
    };
    match response {
        Some(response) => ctx.write_client(&response),
        None => Ok(()),
    }
}

/// Admission at the tier: reject while draining, otherwise route.
fn submit(ctx: &Arc<ConnCtx>, request: VerifyRequest) -> Option<Response> {
    ctx.shared.submitted.fetch_add(1, Ordering::SeqCst);
    if ctx.shared.draining.load(Ordering::SeqCst) {
        return Some(Response::Error {
            code: ErrorCode::Draining,
            id: request.id,
            message: "router is draining; no new jobs admitted".into(),
        });
    }
    route_job(ctx, request)
}

/// Forwards one job to its home shard or the next healthy backend,
/// walking the pool at most once. Returns the error response when no
/// backend can take it.
fn route_job(ctx: &Arc<ConnCtx>, request: VerifyRequest) -> Option<Response> {
    let pool = ctx.shared.config.backends.len();
    let home = shard_index(&request, pool);
    for step in 0..pool {
        let backend = (home + step) % pool;
        if !ctx.shared.healthy[backend].load(Ordering::SeqCst) {
            continue;
        }
        if forward(ctx, backend, &request).is_ok() {
            ctx.shared.forwarded[backend].fetch_add(1, Ordering::SeqCst);
            obs::metrics::counter(&format!(
                "satverifyd.route.backend{backend}.forwarded"
            ))
            .inc();
            ctx.shared.emit("routed", |obj| {
                if let Some(id) = &request.id {
                    obj.push("id", id.as_str());
                }
                obj.push("backend", Json::Int(backend as i64));
                obj.push("home", Json::Int(home as i64));
            });
            return None;
        }
        // could not even submit: this backend is not taking work
        ctx.shared.set_health(backend, false);
    }
    ctx.shared.unroutable.fetch_add(1, Ordering::SeqCst);
    obs::metrics::counter("satverifyd.route.unroutable").inc();
    ctx.shared.emit("unroutable", |obj| {
        if let Some(id) = &request.id {
            obj.push("id", id.as_str());
        }
    });
    Some(Response::Error {
        code: ErrorCode::Overloaded,
        id: request.id.clone(),
        message: "no healthy backend can take the job; retry later".into(),
    })
}

/// Registers the job as pending and writes it to `backend`, opening
/// the per-client link (and its response pump) on first use. The id on
/// the wire is an internal `r<seq>`; the client's own id is restored
/// when the response comes back.
fn forward(ctx: &Arc<ConnCtx>, backend: usize, request: &VerifyRequest) -> io::Result<()> {
    let writer = ensure_link(ctx, backend)?;
    let rid = ctx.next_rid.fetch_add(1, Ordering::SeqCst);
    ctx.pending.lock().expect("pending").insert(
        rid,
        PendingJob { request: request.clone(), backend },
    );
    let mut rewritten = request.clone();
    rewritten.id = Some(format!("r{rid}"));
    let mut line = Request::Verify(rewritten).to_line();
    line.push('\n');
    let result = {
        let mut stream = writer.lock().expect("backend writer");
        stream.write_all(line.as_bytes()).and_then(|()| stream.flush())
    };
    if result.is_err() {
        // never submitted: un-register so nobody re-routes it later
        ctx.pending.lock().expect("pending").remove(&rid);
        ctx.links.lock().expect("links")[backend] = None;
    }
    result
}

fn ensure_link(ctx: &Arc<ConnCtx>, backend: usize) -> io::Result<Arc<Mutex<Stream>>> {
    let mut links = ctx.links.lock().expect("links");
    if let Some(link) = &links[backend] {
        return Ok(Arc::clone(&link.writer));
    }
    let stream = Stream::connect(&ctx.shared.config.backends[backend])?;
    let read_half = stream.try_clone()?;
    let writer = Arc::new(Mutex::new(stream));
    links[backend] = Some(Link { writer: Arc::clone(&writer) });
    let pump_ctx = Arc::clone(ctx);
    let spawned = std::thread::Builder::new()
        .name(format!("satverify-route-pump-{backend}"))
        .spawn(move || pump(&pump_ctx, backend, read_half));
    drop(spawned); // detached: exits on backend EOF or client close
    Ok(writer)
}

/// Takes the pending entry for a backend-echoed `r<seq>` id.
fn take_pending(ctx: &ConnCtx, id: Option<&str>) -> Option<PendingJob> {
    let rid: u64 = id?.strip_prefix('r')?.parse().ok()?;
    ctx.pending.lock().expect("pending").remove(&rid)
}

/// Reads one backend's responses for one client, restoring original
/// ids and forwarding. On a `draining` error or backend EOF, live jobs
/// fail over to another backend.
fn pump(ctx: &Arc<ConnCtx>, backend: usize, stream: Stream) {
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let Ok(response) = Response::parse(line.trim_end()) else { continue };
        match response {
            Response::Result(mut result) => {
                let Some(job) = take_pending(ctx, result.id.as_deref()) else {
                    continue;
                };
                result.id = job.request.id.clone();
                if ctx.write_client(&Response::Result(result)).is_err() {
                    break;
                }
            }
            Response::Error { code, id, message } => {
                let Some(job) = take_pending(ctx, id.as_deref()) else {
                    continue;
                };
                if code == ErrorCode::Draining {
                    // the backend stopped admitting mid-stream: this
                    // job is still owed a disposition — re-route it
                    ctx.shared.set_health(backend, false);
                    failover(ctx, backend, job);
                    continue;
                }
                let relay = Response::Error {
                    code,
                    id: job.request.id.clone(),
                    message,
                };
                if ctx.write_client(&relay).is_err() {
                    break;
                }
            }
            // a backend never volunteers stats/pong on a job link
            _ => {}
        }
    }
    if ctx.closed.load(Ordering::SeqCst) {
        return; // the client is gone; its jobs died with it
    }
    // backend EOF: it crashed or finished draining. Every outstanding
    // job it held fails over — zero lost dispositions.
    ctx.shared.set_health(backend, false);
    ctx.links.lock().expect("links")[backend] = None;
    let orphans: Vec<PendingJob> = {
        let mut pending = ctx.pending.lock().expect("pending");
        let ids: Vec<u64> = pending
            .iter()
            .filter(|(_, job)| job.backend == backend)
            .map(|(&rid, _)| rid)
            .collect();
        ids.into_iter().filter_map(|rid| pending.remove(&rid)).collect()
    };
    for job in orphans {
        failover(ctx, backend, job);
    }
}

/// Re-routes one job whose backend failed, counting the failover. If
/// no other backend can take it, the client gets the explicit
/// `overloaded` disposition from [`route_job`].
fn failover(ctx: &Arc<ConnCtx>, from: usize, job: PendingJob) {
    ctx.shared.failovers.fetch_add(1, Ordering::SeqCst);
    obs::metrics::counter("satverifyd.route.failovers").inc();
    ctx.shared.emit("failover", |obj| {
        if let Some(id) = &job.request.id {
            obj.push("id", id.as_str());
        }
        obj.push("from", Json::Int(from as i64));
    });
    if let Some(response) = route_job(ctx, job.request) {
        let _ = ctx.write_client(&response);
    }
}
