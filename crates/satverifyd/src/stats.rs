//! Serving metrics: exact per-server counters and latency histograms,
//! mirrored into the process-global [`obs`] metrics registry.
//!
//! The per-instance atomics make test assertions exact (two servers in
//! one process do not pollute each other), while the `obs` mirror keeps
//! the daemon's numbers in the same registry — and the same `--json`
//! run reports — as the solver and checker metrics. Mirrored names all
//! live under the `satverifyd.` prefix.
//!
//! Three per-job latencies are tracked in microseconds:
//!
//! * **queue wait** — admission to worker pick-up;
//! * **verify time** — inside the worker, loading inputs and checking;
//! * **end-to-end** — admission to terminal disposition (including
//!   jobs purged from the queue unrun, so every admitted job lands in
//!   this histogram exactly once).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::OnceLock;

use obs::metrics::{
    bucket_index, bucket_upper_bound, HistogramSnapshot, HISTOGRAM_BUCKETS,
};

/// A per-instance power-of-two-bucket histogram, mirroring the layout
/// of [`obs::metrics::Histogram`] but owned by one server so tests can
/// make exact assertions with several servers in one process.
#[derive(Debug)]
pub(crate) struct LocalHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Min tracked as `u64::MAX - value` so it fits monotone `fetch_max`.
    inv_min: AtomicU64,
}

impl Default for LocalHistogram {
    fn default() -> LocalHistogram {
        LocalHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            inv_min: AtomicU64::new(0),
        }
    }
}

impl LocalHistogram {
    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.inv_min.fetch_max(u64::MAX - value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                u64::MAX - self.inv_min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, cell)| {
                    let n = cell.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_upper_bound(i), n))
                })
                .collect(),
        }
    }
}

/// Admission and outcome counters for one server instance.
///
/// At quiescence (no queued or in-flight jobs) the counters satisfy
///
/// ```text
/// submitted = overloaded + draining_rejected + invalid_input
///           + verified + rejected + exhausted + cancelled_queued
///           + internal_errors
/// ```
///
/// — every submitted job is accounted for exactly once; nothing is
/// silently dropped.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// `verify` requests received (before admission).
    pub submitted: AtomicU64,
    /// Rejected at admission: queue full.
    pub overloaded: AtomicU64,
    /// Rejected at admission: server draining.
    pub draining_rejected: AtomicU64,
    /// Accepted but the formula/proof failed to load or parse.
    pub invalid_input: AtomicU64,
    /// Jobs whose proof checked out.
    pub verified: AtomicU64,
    /// Jobs whose proof was refuted.
    pub rejected: AtomicU64,
    /// Jobs stopped by budget, deadline, or cancellation (includes jobs
    /// cancelled mid-run by a client disconnect).
    pub exhausted: AtomicU64,
    /// Jobs purged from the queue unrun because their client vanished.
    pub cancelled_queued: AtomicU64,
    /// Jobs that crashed inside a worker (the worker survived).
    pub internal_errors: AtomicU64,
    /// Jobs served straight from the verdict cache (no verification
    /// ran). Informational: a hit *also* counts its terminal
    /// disposition (verified/rejected/exhausted), so the accounting
    /// invariant is unchanged.
    pub cache_hits: AtomicU64,
    /// Jobs coalesced behind an identical in-flight leader
    /// (single-flight). Informational, like `cache_hits`.
    pub cache_coalesced: AtomicU64,
    /// Cacheable jobs that had to run (first flight for their content).
    pub cache_misses: AtomicU64,
    /// Verdict-cache entries evicted by the LRU byte budget.
    pub cache_evictions: AtomicU64,
    /// Jobs waiting in the queue right now.
    pub queue_depth: AtomicI64,
    /// Jobs being checked right now.
    pub in_flight: AtomicI64,
    /// Admission → worker pick-up, in µs.
    pub(crate) queue_wait_us: LocalHistogram,
    /// Worker load-and-check time, in µs.
    pub(crate) verify_us: LocalHistogram,
    /// Admission → terminal disposition, in µs.
    pub(crate) e2e_us: LocalHistogram,
    /// Admission → cache-served response, in µs. Kept apart from
    /// `verify_us` so cache hits never pollute the verification
    /// latency distribution.
    pub(crate) cache_hit_us: LocalHistogram,
}

/// Cached handles to the mirrored `obs` metrics (registry lookups take
/// a mutex; the handles themselves are lock-free).
struct ObsMirror {
    submitted: obs::metrics::Counter,
    overloaded: obs::metrics::Counter,
    draining_rejected: obs::metrics::Counter,
    invalid_input: obs::metrics::Counter,
    verified: obs::metrics::Counter,
    rejected: obs::metrics::Counter,
    exhausted: obs::metrics::Counter,
    cancelled_queued: obs::metrics::Counter,
    internal_errors: obs::metrics::Counter,
    cache_hits: obs::metrics::Counter,
    cache_coalesced: obs::metrics::Counter,
    cache_misses: obs::metrics::Counter,
    cache_evictions: obs::metrics::Counter,
    queue_depth: obs::metrics::Gauge,
    in_flight: obs::metrics::Gauge,
    latency_ms: obs::metrics::Histogram,
    queue_wait_ms: obs::metrics::Histogram,
    queue_wait_us: obs::metrics::Histogram,
    verify_us: obs::metrics::Histogram,
    e2e_us: obs::metrics::Histogram,
    cache_hit_us: obs::metrics::Histogram,
}

fn mirror() -> &'static ObsMirror {
    static MIRROR: OnceLock<ObsMirror> = OnceLock::new();
    MIRROR.get_or_init(|| ObsMirror {
        submitted: obs::metrics::counter("satverifyd.jobs.submitted"),
        overloaded: obs::metrics::counter("satverifyd.jobs.overloaded"),
        draining_rejected: obs::metrics::counter("satverifyd.jobs.draining_rejected"),
        invalid_input: obs::metrics::counter("satverifyd.jobs.invalid_input"),
        verified: obs::metrics::counter("satverifyd.jobs.verified"),
        rejected: obs::metrics::counter("satverifyd.jobs.rejected"),
        exhausted: obs::metrics::counter("satverifyd.jobs.exhausted"),
        cancelled_queued: obs::metrics::counter("satverifyd.jobs.cancelled_queued"),
        internal_errors: obs::metrics::counter("satverifyd.jobs.internal_errors"),
        cache_hits: obs::metrics::counter("satverifyd.cache.hits"),
        cache_coalesced: obs::metrics::counter("satverifyd.cache.coalesced"),
        cache_misses: obs::metrics::counter("satverifyd.cache.misses"),
        cache_evictions: obs::metrics::counter("satverifyd.cache.evictions"),
        queue_depth: obs::metrics::gauge("satverifyd.queue.depth"),
        in_flight: obs::metrics::gauge("satverifyd.jobs.in_flight"),
        latency_ms: obs::metrics::histogram("satverifyd.job.latency_ms"),
        queue_wait_ms: obs::metrics::histogram("satverifyd.job.queue_wait_ms"),
        queue_wait_us: obs::metrics::histogram("satverifyd.job.queue_wait_us"),
        verify_us: obs::metrics::histogram("satverifyd.job.verify_us"),
        e2e_us: obs::metrics::histogram("satverifyd.job.e2e_us"),
        cache_hit_us: obs::metrics::histogram("satverifyd.job.cache_hit_us"),
    })
}

/// The events a server records. Each increments one per-instance
/// counter and its `obs` mirror.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Event {
    Submitted,
    Overloaded,
    DrainingRejected,
    InvalidInput,
    Verified,
    Rejected,
    Exhausted,
    CancelledQueued,
    InternalError,
    CacheHit,
    CacheCoalesced,
    CacheMiss,
    CacheEviction,
}

impl ServerStats {
    /// Fresh zeroed stats.
    #[must_use]
    pub fn new() -> ServerStats {
        ServerStats::default()
    }

    pub(crate) fn record(&self, event: Event) {
        let (own, obs_counter) = match event {
            Event::Submitted => (&self.submitted, mirror().submitted),
            Event::Overloaded => (&self.overloaded, mirror().overloaded),
            Event::DrainingRejected => {
                (&self.draining_rejected, mirror().draining_rejected)
            }
            Event::InvalidInput => (&self.invalid_input, mirror().invalid_input),
            Event::Verified => (&self.verified, mirror().verified),
            Event::Rejected => (&self.rejected, mirror().rejected),
            Event::Exhausted => (&self.exhausted, mirror().exhausted),
            Event::CancelledQueued => {
                (&self.cancelled_queued, mirror().cancelled_queued)
            }
            Event::InternalError => {
                (&self.internal_errors, mirror().internal_errors)
            }
            Event::CacheHit => (&self.cache_hits, mirror().cache_hits),
            Event::CacheCoalesced => {
                (&self.cache_coalesced, mirror().cache_coalesced)
            }
            Event::CacheMiss => (&self.cache_misses, mirror().cache_misses),
            Event::CacheEviction => {
                (&self.cache_evictions, mirror().cache_evictions)
            }
        };
        own.fetch_add(1, Ordering::Relaxed);
        obs_counter.inc();
    }

    pub(crate) fn queue_depth_add(&self, delta: i64) {
        self.queue_depth.fetch_add(delta, Ordering::Relaxed);
        mirror().queue_depth.add(delta);
    }

    pub(crate) fn in_flight_add(&self, delta: i64) {
        self.in_flight.fetch_add(delta, Ordering::Relaxed);
        mirror().in_flight.add(delta);
    }

    /// Records admission → worker pick-up time. Feeds the per-instance
    /// µs histogram, its `obs` mirror, and the legacy ms mirror.
    pub(crate) fn record_queue_wait_us(&self, us: u64) {
        self.queue_wait_us.record(us);
        mirror().queue_wait_us.record(us);
        mirror().queue_wait_ms.record(us / 1000);
    }

    /// Records the worker's load-and-check time.
    pub(crate) fn record_verify_us(&self, us: u64) {
        self.verify_us.record(us);
        mirror().verify_us.record(us);
    }

    /// Records admission → terminal disposition time. Every admitted
    /// job must land here exactly once — run, cancelled mid-run, or
    /// purged from the queue unrun.
    pub(crate) fn record_e2e_us(&self, us: u64) {
        self.e2e_us.record(us);
        mirror().e2e_us.record(us);
        mirror().latency_ms.record(us / 1000);
    }

    /// Records admission → response time for a cache-served job. This
    /// deliberately does **not** touch `verify_us`: no verification ran.
    pub(crate) fn record_cache_hit_us(&self, us: u64) {
        self.cache_hit_us.record(us);
        mirror().cache_hit_us.record(us);
    }

    /// A point-in-time copy of every counter.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        let get = |cell: &AtomicU64| cell.load(Ordering::Relaxed);
        StatsSnapshot {
            submitted: get(&self.submitted),
            overloaded: get(&self.overloaded),
            draining_rejected: get(&self.draining_rejected),
            invalid_input: get(&self.invalid_input),
            verified: get(&self.verified),
            rejected: get(&self.rejected),
            exhausted: get(&self.exhausted),
            cancelled_queued: get(&self.cancelled_queued),
            internal_errors: get(&self.internal_errors),
            cache_hits: get(&self.cache_hits),
            cache_coalesced: get(&self.cache_coalesced),
            cache_misses: get(&self.cache_misses),
            cache_evictions: get(&self.cache_evictions),
            queue_depth: self.queue_depth.load(Ordering::Relaxed).max(0) as u64,
            in_flight: self.in_flight.load(Ordering::Relaxed).max(0) as u64,
            queue_wait_us: self.queue_wait_us.snapshot(),
            verify_us: self.verify_us.snapshot(),
            e2e_us: self.e2e_us.snapshot(),
            cache_hit_us: self.cache_hit_us.snapshot(),
        }
    }
}

/// A point-in-time copy of a server's counters and latency histograms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// `verify` requests received.
    pub submitted: u64,
    /// Rejected: queue full.
    pub overloaded: u64,
    /// Rejected: draining.
    pub draining_rejected: u64,
    /// Accepted but unparseable inputs.
    pub invalid_input: u64,
    /// Verified proofs.
    pub verified: u64,
    /// Refuted proofs.
    pub rejected: u64,
    /// Budget/deadline/cancellation stops.
    pub exhausted: u64,
    /// Purged from the queue unrun.
    pub cancelled_queued: u64,
    /// Worker crashes survived.
    pub internal_errors: u64,
    /// Served straight from the verdict cache (informational — a hit
    /// also counts its terminal disposition).
    pub cache_hits: u64,
    /// Coalesced behind an identical in-flight job (informational).
    pub cache_coalesced: u64,
    /// Cacheable jobs that ran as the first flight for their content.
    pub cache_misses: u64,
    /// Verdict-cache LRU evictions.
    pub cache_evictions: u64,
    /// Currently queued.
    pub queue_depth: u64,
    /// Currently checking.
    pub in_flight: u64,
    /// Admission → worker pick-up, in µs.
    pub queue_wait_us: HistogramSnapshot,
    /// Worker load-and-check time, in µs.
    pub verify_us: HistogramSnapshot,
    /// Admission → terminal disposition, in µs.
    pub e2e_us: HistogramSnapshot,
    /// Admission → cache-served response, in µs (kept out of
    /// `verify_us`).
    pub cache_hit_us: HistogramSnapshot,
}

impl StatsSnapshot {
    /// Sum of every terminal disposition — at quiescence this equals
    /// [`StatsSnapshot::submitted`].
    #[must_use]
    pub fn accounted(&self) -> u64 {
        self.overloaded
            + self.draining_rejected
            + self.invalid_input
            + self.verified
            + self.rejected
            + self.exhausted
            + self.cancelled_queued
            + self.internal_errors
    }

    /// The counters as `(name, value)` pairs for the `stats` response.
    #[must_use]
    pub fn named_counters(&self) -> Vec<(String, u64)> {
        [
            ("submitted", self.submitted),
            ("overloaded", self.overloaded),
            ("draining_rejected", self.draining_rejected),
            ("invalid_input", self.invalid_input),
            ("verified", self.verified),
            ("rejected", self.rejected),
            ("exhausted", self.exhausted),
            ("cancelled_queued", self.cancelled_queued),
            ("internal_errors", self.internal_errors),
            ("cache_hits", self.cache_hits),
            ("cache_coalesced", self.cache_coalesced),
            ("cache_misses", self.cache_misses),
            ("cache_evictions", self.cache_evictions),
        ]
        .into_iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_hit_their_counter_and_the_obs_mirror() {
        let stats = ServerStats::new();
        let before = obs::metrics::counter("satverifyd.jobs.verified").get();
        stats.record(Event::Submitted);
        stats.record(Event::Verified);
        let snap = stats.snapshot();
        assert_eq!(snap.submitted, 1);
        assert_eq!(snap.verified, 1);
        assert_eq!(snap.accounted(), 1);
        assert_eq!(
            obs::metrics::counter("satverifyd.jobs.verified").get(),
            before + 1,
            "the obs registry mirrors the event"
        );
    }

    #[test]
    fn gauges_move_both_ways() {
        let stats = ServerStats::new();
        stats.queue_depth_add(3);
        stats.queue_depth_add(-1);
        stats.in_flight_add(1);
        let snap = stats.snapshot();
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.in_flight, 1);
    }

    #[test]
    fn named_counters_cover_every_terminal_disposition() {
        let stats = ServerStats::new();
        for event in [
            Event::Submitted,
            Event::Overloaded,
            Event::DrainingRejected,
            Event::InvalidInput,
            Event::Verified,
            Event::Rejected,
            Event::Exhausted,
            Event::CancelledQueued,
            Event::InternalError,
            Event::CacheHit,
            Event::CacheCoalesced,
            Event::CacheMiss,
            Event::CacheEviction,
        ] {
            stats.record(event);
        }
        let snap = stats.snapshot();
        let names = snap.named_counters();
        assert_eq!(names.len(), 13);
        assert!(names.iter().all(|&(_, v)| v == 1));
        assert_eq!(
            snap.accounted(),
            8,
            "submitted and the informational cache counters are not dispositions"
        );
    }

    #[test]
    fn cache_hit_latency_is_not_verify_latency() {
        let stats = ServerStats::new();
        stats.record_cache_hit_us(40);
        let snap = stats.snapshot();
        assert_eq!(snap.cache_hit_us.count, 1);
        assert_eq!(snap.verify_us.count, 0, "hits never touch verify_us");
    }

    #[test]
    fn local_histograms_are_per_instance() {
        let a = ServerStats::new();
        let b = ServerStats::new();
        a.record_queue_wait_us(10);
        a.record_verify_us(500);
        a.record_e2e_us(600);
        let snap_a = a.snapshot();
        let snap_b = b.snapshot();
        assert_eq!(snap_a.queue_wait_us.count, 1);
        assert_eq!(snap_a.verify_us.count, 1);
        assert_eq!(snap_a.e2e_us.count, 1);
        assert_eq!(snap_a.e2e_us.min, 600);
        assert_eq!(snap_a.e2e_us.max, 600);
        assert_eq!(snap_b.queue_wait_us.count, 0, "b untouched by a");
        assert_eq!(snap_b.e2e_us.count, 0);
    }

    #[test]
    fn local_histogram_percentiles_track_samples() {
        let h = LocalHistogram::default();
        for us in [100u64, 200, 300, 400, 100_000] {
            h.record(us);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.min, 100);
        assert_eq!(snap.max, 100_000);
        let p50 = snap.p50();
        assert!((200..1024).contains(&p50), "p50 within 2x of 200-300: {p50}");
        assert!(snap.p99() >= 100_000 / 2, "p99 tracks the outlier");
    }
}
