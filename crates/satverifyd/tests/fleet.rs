//! Front-tier tests: the router shards jobs across real in-process
//! backends, duplicate submissions coalesce at the backend, a draining
//! backend's bounced jobs fail over with zero lost dispositions, and an
//! exhausted pool answers with an error rather than silence.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proofver::{FaultPlan, Gate};
use satverifyd::router::shard_index;
use satverifyd::{
    Client, Endpoint, ErrorCode, Request, Response, Router, RouterConfig,
    Server, ServerConfig, ServerHandle, VerifyRequest,
};

const XOR_SQUARE: &str = "p cnf 2 4\n1 2 0\n-1 -2 0\n1 -2 0\n-1 2 0\n";
const XOR_PROOF: &str = "2 0\n-2 0\n0\n";

/// The XOR formula with a distinguishing comment line: same verdict,
/// different content bytes, so variants spread across shards.
fn formula_variant(n: usize) -> String {
    format!("c variant {n}\n{XOR_SQUARE}")
}

fn job_for(formula: &str, id: &str) -> VerifyRequest {
    VerifyRequest {
        id: Some(id.to_string()),
        formula: Some(formula.to_string()),
        proof: Some(XOR_PROOF.to_string()),
        ..VerifyRequest::default()
    }
}

/// The first formula variant at or after `start` that hashes to
/// `shard` of `shards`.
fn variant_on_shard(start: usize, shard: usize, shards: usize) -> String {
    (start..start + 10_000)
        .map(formula_variant)
        .find(|f| shard_index(&job_for(f, "probe"), shards) == shard)
        .expect("a variant lands on every shard within 10k tries")
}

fn backend(gate: Option<Gate>) -> ServerHandle {
    let mut config = ServerConfig::default().workers(1).cache_enabled(true);
    if let Some(gate) = gate {
        config = config.fault_factory(Arc::new(move |_seq| {
            FaultPlan::none().hold_before_run(gate.clone())
        }));
    }
    Server::bind(&Endpoint::tcp("127.0.0.1:0"), config).expect("bind backend")
}

fn counters(handle: &satverifyd::RouterHandle) -> HashMap<String, u64> {
    handle.counters().into_iter().collect()
}

/// A mixed batch with duplicates through the router: every job gets
/// exactly one disposition, duplicates are verified once (coalesced or
/// cache-served at their home backend), and the per-backend forwarding
/// counters account for every submission.
#[test]
fn routed_batch_with_duplicates_verifies_once_per_distinct_job() {
    let b0 = backend(None);
    let b1 = backend(None);
    let router = Router::bind(
        &Endpoint::tcp("127.0.0.1:0"),
        RouterConfig::new(vec![b0.local_endpoint(), b1.local_endpoint()]),
    )
    .expect("bind router");

    // 4 distinct formulas, each submitted twice
    let mut jobs = Vec::new();
    for n in 0..4 {
        let formula = formula_variant(n);
        jobs.push(job_for(&formula, &format!("v{n}-a")));
        jobs.push(job_for(&formula, &format!("v{n}-b")));
    }
    let mut client = Client::connect(&router.local_endpoint()).expect("connect");
    client.send(&Request::Batch(jobs)).expect("send");
    let mut ids = Vec::new();
    for _ in 0..8 {
        match client.recv().expect("every job answers") {
            Response::Result(r) => {
                assert_eq!(r.outcome, "verified");
                ids.push(r.id.expect("id echoed"));
            }
            other => panic!("expected a result, got {other:?}"),
        }
    }
    ids.sort();
    let mut expected: Vec<String> = (0..4)
        .flat_map(|n| [format!("v{n}-a"), format!("v{n}-b")])
        .collect();
    expected.sort();
    assert_eq!(ids, expected, "zero lost dispositions");

    let counters = counters(&router);
    assert_eq!(counters["submitted"], 8);
    assert_eq!(
        counters["forwarded_backend_0"] + counters["forwarded_backend_1"],
        8,
        "every submission was forwarded"
    );
    assert_eq!(counters["failovers"], 0);
    assert_eq!(counters["unroutable"], 0);

    // each duplicate pair ran at most one verification at its backend
    let runs = b0.stats().verify_us.count + b1.stats().verify_us.count;
    assert_eq!(runs, 4, "duplicates were coalesced or cache-served");
    let saved = b0.stats().cache_hits
        + b1.stats().cache_hits
        + b0.stats().cache_coalesced
        + b1.stats().cache_coalesced;
    assert_eq!(saved, 4, "one saved verification per duplicate");

    router.shutdown();
    drop(client);
    router.join();
    for handle in [b0, b1] {
        handle.shutdown();
        handle.join();
    }
}

/// Deterministic drain failover: backend 0 starts draining while a job
/// is mid-flight there. The in-flight job finishes and is relayed; a
/// new job bounced by the drain is re-routed to backend 1. Both clients
/// get verdicts — zero lost dispositions, failovers counted.
#[test]
fn draining_backend_fails_over_without_losing_dispositions() {
    let gate = Gate::new();
    let b0 = backend(Some(gate.clone()));
    let b1 = backend(None);
    let config =
        RouterConfig::new(vec![b0.local_endpoint(), b1.local_endpoint()])
            // keep the prober out of the race: health flips only via the
            // drain bounce below
            .health_interval(Duration::from_secs(600));
    let router =
        Router::bind(&Endpoint::tcp("127.0.0.1:0"), config).expect("bind router");

    let held_formula = variant_on_shard(0, 0, 2);
    let bounced_formula = variant_on_shard(10_000, 0, 2);
    assert_ne!(held_formula, bounced_formula);

    let mut client = Client::connect(&router.local_endpoint()).expect("connect");
    client
        .send(&Request::Verify(job_for(&held_formula, "held")))
        .expect("send");
    gate.await_blocked(1); // the job is running on backend 0

    b0.shutdown(); // backend 0 drains: finishes `held`, bounces new work
    client
        .send(&Request::Verify(job_for(&bounced_formula, "bounced")))
        .expect("send");

    // `bounced` completes on backend 1 while `held` is still gated
    match client.recv().expect("failover answer") {
        Response::Result(r) => {
            assert_eq!(r.id.as_deref(), Some("bounced"));
            assert_eq!(r.outcome, "verified", "re-routed and verified");
        }
        other => panic!("expected the failover result, got {other:?}"),
    }
    gate.open();
    match client.recv().expect("held answer") {
        Response::Result(r) => {
            assert_eq!(r.id.as_deref(), Some("held"));
            assert_eq!(r.outcome, "verified", "drain finished the backlog");
        }
        other => panic!("expected the held result, got {other:?}"),
    }

    let counters = counters(&router);
    assert_eq!(counters["submitted"], 2);
    assert!(counters["failovers"] >= 1, "the drain bounce was re-routed");
    assert!(counters["forwarded_backend_1"] >= 1);
    assert_eq!(counters["unroutable"], 0);
    assert_eq!(router.backend_health(), [false, true], "bounce marked b0 down");

    router.shutdown();
    drop(client);
    router.join();
    b0.join(); // drained by the shutdown above
    b1.shutdown();
    b1.join();
}

/// When every backend is gone the router still owes each submission a
/// disposition: it answers `overloaded` instead of dropping the job.
#[test]
fn exhausted_pool_answers_instead_of_dropping() {
    let b0 = backend(None);
    let config = RouterConfig::new(vec![b0.local_endpoint()])
        .health_interval(Duration::from_secs(600));
    let router =
        Router::bind(&Endpoint::tcp("127.0.0.1:0"), config).expect("bind router");

    b0.shutdown();
    let mut client = Client::connect(&router.local_endpoint()).expect("connect");
    client
        .send(&Request::Verify(job_for(XOR_SQUARE, "doomed")))
        .expect("send");
    match client.recv().expect("an answer, not silence") {
        Response::Error { code, id, .. } => {
            assert_eq!(code, ErrorCode::Overloaded);
            assert_eq!(id.as_deref(), Some("doomed"));
        }
        other => panic!("expected overloaded, got {other:?}"),
    }
    let counters = counters(&router);
    assert_eq!(counters["unroutable"], 1);

    router.shutdown();
    drop(client);
    router.join();
    b0.join();
}
