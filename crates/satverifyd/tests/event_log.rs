//! Deterministic job-lifecycle event-log tests: every admitted job's
//! timeline can be reconstructed from the JSONL log, every admitted job
//! reaches exactly one terminal event (even under disconnect), rejected
//! submissions never grow a timeline, and the latency histograms agree
//! with the log.
//!
//! No sleeps — the same [`Gate`] + ping-fence discipline as
//! `tests/service.rs`.

use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use obs::eventlog::parse_lines;
use obs::json::Json;
use obs::EventLog;
use proofver::{FaultPlan, Gate};
use satverifyd::{
    Client, Endpoint, ErrorCode, Request, Response, Server, ServerConfig,
    VerifyRequest,
};

const XOR_SQUARE: &str = "p cnf 2 4\n1 2 0\n-1 -2 0\n1 -2 0\n-1 2 0\n";
const XOR_PROOF: &str = "2 0\n-2 0\n0\n";

fn verify_with_id(id: &str) -> Request {
    Request::Verify(VerifyRequest {
        id: Some(id.to_string()),
        formula: Some(XOR_SQUARE.to_string()),
        proof: Some(XOR_PROOF.to_string()),
        ..VerifyRequest::default()
    })
}

fn spin_until(predicate: impl Fn() -> bool) {
    while !predicate() {
        std::thread::yield_now();
    }
}

/// A `Vec<u8>` sink the test can read back through an `Arc`.
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().expect("sink").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn captured_log() -> (Arc<EventLog>, Arc<Mutex<Vec<u8>>>) {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let log = Arc::new(EventLog::from_writer(Box::new(SharedSink(Arc::clone(&buf)))));
    (log, buf)
}

fn read_events(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<Json> {
    let text = String::from_utf8(buf.lock().expect("sink").clone()).expect("utf8");
    parse_lines(&text).expect("well-formed JSONL")
}

/// Waits for `disconnected` events from all `conns` reader threads
/// (which detach, so they can outlive `join()` briefly), flushing the
/// buffered log each poll. `disconnected` is the last event a reader
/// emits, so once all are visible every earlier event is too; worker
/// events are already fenced by `join()`.
fn await_disconnects(
    log: &EventLog,
    buf: &Arc<Mutex<Vec<u8>>>,
    conns: usize,
) -> Vec<Json> {
    loop {
        log.flush().expect("flush");
        let events = read_events(buf);
        let seen = events
            .iter()
            .filter(|e| field_str(e, "event").as_deref() == Some("disconnected"))
            .count();
        if seen >= conns {
            return events;
        }
        std::thread::yield_now();
    }
}

fn field_str(event: &Json, key: &str) -> Option<String> {
    event.get(key).and_then(Json::as_str).map(str::to_string)
}

fn field_u64(event: &Json, key: &str) -> Option<u64> {
    event.get(key).and_then(Json::as_int).and_then(|n| u64::try_from(n).ok())
}

const TERMINALS: [&str; 5] =
    ["verified", "rejected", "exhausted", "invalid_input", "cancelled"];

/// One job's events, keyed by the wire `id`, in log order.
fn timelines(events: &[Json]) -> HashMap<String, Vec<&Json>> {
    let mut map: HashMap<String, Vec<&Json>> = HashMap::new();
    for event in events {
        if let Some(id) = field_str(event, "id") {
            map.entry(id).or_default().push(event);
        }
    }
    map
}

#[test]
fn multi_client_timelines_are_complete_and_ordered() {
    let gate = Gate::new();
    let hold = gate.clone();
    let (log, buf) = captured_log();
    let config = ServerConfig::default()
        .workers(1)
        .queue_capacity(8)
        .fault_factory(Arc::new(move |_seq| {
            FaultPlan::none().hold_before_run(hold.clone())
        }))
        .event_log(Arc::clone(&log));
    let handle =
        Server::bind(&Endpoint::tcp("127.0.0.1:0"), config).expect("bind");

    // client A's first job parks in the single worker; everything else
    // queues behind it, guaranteeing non-zero queue waits
    let mut a = Client::connect(&handle.local_endpoint()).expect("connect a");
    let mut b = Client::connect(&handle.local_endpoint()).expect("connect b");
    a.send(&verify_with_id("a-0")).expect("send");
    gate.await_blocked(1);
    a.send(&verify_with_id("a-1")).expect("send");
    b.send(&verify_with_id("b-0")).expect("send");
    b.send(&verify_with_id("b-1")).expect("send");
    a.send(&Request::Ping).expect("fence");
    assert!(matches!(a.recv().expect("pong"), Response::Pong));
    b.send(&Request::Ping).expect("fence");
    assert!(matches!(b.recv().expect("pong"), Response::Pong));

    gate.open();
    for _ in 0..2 {
        assert!(matches!(a.recv().expect("result"), Response::Result(r) if r.outcome == "verified"));
        assert!(matches!(b.recv().expect("result"), Response::Result(r) if r.outcome == "verified"));
    }

    // percentile acceptance: the held job makes verify time large, the
    // three queued jobs make queue wait large, so p50/p99 are non-zero
    let stats = match a.request(&Request::Stats).expect("stats") {
        Response::Stats(reply) => reply,
        other => panic!("expected stats, got {other:?}"),
    };
    for name in ["queue_wait", "verify", "e2e"] {
        let summary = stats.latency(name).unwrap_or_else(|| panic!("{name} summary"));
        assert_eq!(summary.count, 4, "{name} saw every job");
        assert!(summary.p50 > 0, "{name} p50 = {}", summary.p50);
        assert!(summary.p99 > 0, "{name} p99 = {}", summary.p99);
        assert!(summary.p50 <= summary.p99, "{name} percentiles ordered");
        assert!(summary.min <= summary.p50 && summary.p99 <= summary.max.max(1));
    }

    drop(a);
    drop(b);
    handle.shutdown();
    handle.join();

    let events = await_disconnects(&log, &buf, 2);
    // two connections traced end to end
    let connected =
        events.iter().filter(|e| field_str(e, "event").as_deref() == Some("connected"));
    assert_eq!(connected.count(), 2, "one connected event per client");

    let timelines = timelines(&events);
    assert_eq!(timelines.len(), 4, "a-0 a-1 b-0 b-1");
    for (id, steps) in &timelines {
        let kinds: Vec<String> =
            steps.iter().filter_map(|e| field_str(e, "event")).collect();
        assert_eq!(
            kinds.iter().filter(|k| TERMINALS.contains(&k.as_str())).count(),
            1,
            "{id}: exactly one terminal event, got {kinds:?}"
        );
        for kind in ["received", "admitted", "started", "verified"] {
            assert!(kinds.iter().any(|k| k == kind), "{id} missing {kind}: {kinds:?}");
        }

        // every event of one job carries the same job number and conn
        let seqs: Vec<_> = steps.iter().filter_map(|e| field_u64(e, "job")).collect();
        assert!(seqs.windows(2).all(|w| w[0] == w[1]), "{id}: one job id");
        let conns: Vec<_> = steps.iter().filter_map(|e| field_u64(e, "conn")).collect();
        assert!(conns.windows(2).all(|w| w[0] == w[1]), "{id}: one conn");

        // causal timestamp order (admitted vs started is concurrent —
        // see docs/OBSERVABILITY.md — so it is not asserted here)
        let ts = |kind: &str| {
            steps
                .iter()
                .find(|e| field_str(e, "event").as_deref() == Some(kind))
                .and_then(|e| field_u64(e, "ts_us"))
                .unwrap_or_else(|| panic!("{id}: {kind} has ts_us"))
        };
        assert!(ts("received") <= ts("admitted"));
        assert!(ts("received") <= ts("started"));
        assert!(ts("started") <= ts("verified"));

        // the started event names the wait; the terminal names both costs
        let started = steps
            .iter()
            .find(|e| field_str(e, "event").as_deref() == Some("started"))
            .expect("started");
        assert!(field_u64(started, "queue_wait_us").is_some());
        let terminal = steps
            .iter()
            .find(|e| field_str(e, "event").as_deref() == Some("verified"))
            .expect("terminal");
        assert!(field_u64(terminal, "verify_us").is_some());
        assert!(field_u64(terminal, "e2e_us").is_some());
    }
}

#[test]
fn disconnect_still_terminates_every_admitted_job() {
    let gate = Gate::new();
    let hold = gate.clone();
    let (log, buf) = captured_log();
    let config = ServerConfig::default()
        .workers(1)
        .queue_capacity(8)
        .fault_factory(Arc::new(move |_seq| {
            FaultPlan::none().hold_before_run(hold.clone())
        }))
        .event_log(Arc::clone(&log));
    let handle =
        Server::bind(&Endpoint::tcp("127.0.0.1:0"), config).expect("bind");

    let mut client = Client::connect(&handle.local_endpoint()).expect("connect");
    client.send(&verify_with_id("running")).expect("send");
    gate.await_blocked(1);
    client.send(&verify_with_id("queued")).expect("send");
    client.send(&Request::Ping).expect("fence");
    assert!(matches!(client.recv().expect("pong"), Response::Pong));

    drop(client); // cancels `running`, purges `queued`
    spin_until(|| handle.stats().cancelled_queued == 1);
    gate.open();
    spin_until(|| handle.stats().exhausted == 1);

    // latency accounting under disconnect: both admitted jobs land in
    // the end-to-end histogram — the purged one included
    let snapshot = handle.stats();
    assert_eq!(snapshot.e2e_us.count, 2, "purged job is in the e2e histogram");
    assert_eq!(snapshot.verify_us.count, 1, "only the running job was checked");

    handle.shutdown();
    handle.join();

    let events = await_disconnects(&log, &buf, 1);
    let timelines = timelines(&events);
    let kinds = |id: &str| -> Vec<String> {
        timelines[id].iter().filter_map(|e| field_str(e, "event")).collect()
    };
    let running = kinds("running");
    assert!(running.iter().any(|k| k == "started"));
    assert_eq!(
        running.iter().filter(|k| TERMINALS.contains(&k.as_str())).count(),
        1,
        "mid-run cancellation terminates once: {running:?}"
    );
    assert!(running.iter().any(|k| k == "exhausted"), "{running:?}");

    let queued = kinds("queued");
    assert!(!queued.iter().any(|k| k == "started"), "purged unrun: {queued:?}");
    assert_eq!(
        queued.iter().filter(|k| TERMINALS.contains(&k.as_str())).count(),
        1,
        "purged job terminates once: {queued:?}"
    );
    assert!(queued.iter().any(|k| k == "cancelled"), "{queued:?}");
    let cancelled = timelines["queued"]
        .iter()
        .find(|e| field_str(e, "event").as_deref() == Some("cancelled"))
        .expect("cancelled event");
    assert!(field_u64(cancelled, "e2e_us").is_some(), "purge records e2e");
}

#[test]
fn rejected_submissions_get_a_reason_and_no_timeline() {
    let gate = Gate::new();
    let hold = gate.clone();
    let (log, buf) = captured_log();
    let config = ServerConfig::default()
        .workers(1)
        .queue_capacity(1)
        .fault_factory(Arc::new(move |_seq| {
            FaultPlan::none().hold_before_run(hold.clone())
        }))
        .event_log(Arc::clone(&log));
    let handle =
        Server::bind(&Endpoint::tcp("127.0.0.1:0"), config).expect("bind");

    let mut client = Client::connect(&handle.local_endpoint()).expect("connect");
    client.send(&verify_with_id("held")).expect("send");
    gate.await_blocked(1);
    client.send(&verify_with_id("fills-queue")).expect("send");
    client.send(&Request::Ping).expect("fence");
    assert!(matches!(client.recv().expect("pong"), Response::Pong));

    client.send(&verify_with_id("bounced")).expect("send");
    match client.recv().expect("rejection") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected overloaded, got {other:?}"),
    }

    gate.open();
    for _ in 0..2 {
        assert!(matches!(client.recv().expect("result"), Response::Result(_)));
    }
    client.send(&Request::Shutdown).expect("send");
    assert!(matches!(client.recv().expect("ack"), Response::ShuttingDown));
    client.send(&verify_with_id("too-late")).expect("send");
    match client.recv().expect("refusal") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Draining),
        other => panic!("expected draining, got {other:?}"),
    }

    drop(client);
    // rejected submissions never reach the latency histograms
    spin_until(|| handle.stats().accounted() == handle.stats().submitted);
    let snapshot = handle.stats();
    assert_eq!(snapshot.e2e_us.count, 2, "held + fills-queue only");
    handle.join();

    let events = await_disconnects(&log, &buf, 1);
    let timelines = timelines(&events);
    for (id, reason) in [("bounced", "overloaded"), ("too-late", "draining")] {
        let steps = &timelines[id];
        let kinds: Vec<String> =
            steps.iter().filter_map(|e| field_str(e, "event")).collect();
        assert_eq!(kinds, ["received", "rejected"], "{id}: no timeline beyond rejection");
        let rejected = steps.last().expect("rejected event");
        assert_eq!(field_str(rejected, "reason").as_deref(), Some(reason), "{id}");
        assert!(field_u64(rejected, "job").is_some(), "{id}: rejection names a job id");
    }
}
