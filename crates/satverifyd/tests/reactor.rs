//! I/O-model tests: the readiness-driven reactor holds a thousand idle
//! connections on a bounded thread count, and the thread-per-connection
//! model remains selectable and fully functional.

use satverifyd::{
    Client, Endpoint, IoModel, Request, Response, Server, ServerConfig,
    VerifyRequest,
};

const XOR_SQUARE: &str = "p cnf 2 4\n1 2 0\n-1 -2 0\n1 -2 0\n-1 2 0\n";
const XOR_PROOF: &str = "2 0\n-2 0\n0\n";

fn verify_job(id: &str) -> Request {
    Request::Verify(VerifyRequest {
        id: Some(id.to_string()),
        formula: Some(XOR_SQUARE.to_string()),
        proof: Some(XOR_PROOF.to_string()),
        ..VerifyRequest::default()
    })
}

/// The explicit thread-per-connection model still round-trips jobs and
/// control requests.
#[test]
fn threaded_model_round_trips() {
    let config = ServerConfig::default().workers(1).io(IoModel::Threads);
    let handle = Server::bind(&Endpoint::tcp("127.0.0.1:0"), config).expect("bind");
    let mut client = Client::connect(&handle.local_endpoint()).expect("connect");
    assert!(matches!(client.request(&Request::Ping).expect("ping"), Response::Pong));
    match client.request(&verify_job("t-0")).expect("verify") {
        Response::Result(r) => assert_eq!(r.outcome, "verified"),
        other => panic!("expected a result, got {other:?}"),
    }
    drop(client);
    handle.shutdown();
    handle.join();
}

/// Threads currently alive in this process, from `/proc/self/status`.
#[cfg(target_os = "linux")]
fn thread_count() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("status");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// A thousand idle connections cost the reactor a poll set, not a
/// thousand parked threads — and the server still answers through any
/// of them afterwards.
#[cfg(target_os = "linux")]
#[test]
fn reactor_holds_a_thousand_idle_connections_with_bounded_threads() {
    minipoll::raise_nofile_limit(4096).expect("raise nofile limit");
    let handle =
        Server::bind(&Endpoint::tcp("127.0.0.1:0"), ServerConfig::default().workers(2))
            .expect("bind");
    let endpoint = handle.local_endpoint();

    let mut idle = Vec::with_capacity(1000);
    for i in 0..1000 {
        match Client::connect(&endpoint) {
            Ok(client) => idle.push(client),
            Err(e) => panic!("connect {i}: {e}"),
        }
    }
    // the accept backlog may still hold some: prove all 1000 are
    // serviced by round-tripping through the last one accepted
    let last = idle.last_mut().expect("clients");
    assert!(matches!(last.request(&Request::Ping).expect("ping"), Response::Pong));

    let threads = thread_count();
    assert!(
        threads < 64,
        "idle connections must not cost threads: {threads} alive with \
         1000 connections open"
    );

    // the server still verifies under the full poll set
    match idle[0].request(&verify_job("soak-0")).expect("verify") {
        Response::Result(r) => assert_eq!(r.outcome, "verified"),
        other => panic!("expected a result, got {other:?}"),
    }

    drop(idle);
    handle.shutdown();
    handle.join();
}
