//! Deterministic service-semantics tests: client-disconnect
//! cancellation and queue-full rejection.
//!
//! No sleeps. Jobs are parked at a [`Gate`] via the harness's
//! [`FaultPlan::hold_before_run`] hook, so the tests *know* — rather
//! than hope — that a job is inside a worker before acting, and
//! `ping`/`pong` round-trips are used as ordering fences (one reader
//! thread per connection processes requests strictly in order).

use std::sync::Arc;

use proofver::{FaultPlan, Gate};
use satverifyd::{
    Client, Endpoint, ErrorCode, Request, Response, Server, ServerConfig,
    VerifyRequest,
};

const XOR_SQUARE: &str = "p cnf 2 4\n1 2 0\n-1 -2 0\n1 -2 0\n-1 2 0\n";
const XOR_PROOF: &str = "2 0\n-2 0\n0\n";

fn verify_with_id(id: &str) -> Request {
    Request::Verify(VerifyRequest {
        id: Some(id.to_string()),
        formula: Some(XOR_SQUARE.to_string()),
        proof: Some(XOR_PROOF.to_string()),
        ..VerifyRequest::default()
    })
}

/// Spin (yielding) until `predicate` holds. The watched transitions are
/// guaranteed to happen — this bounds nothing, it only waits without
/// wall-clock assumptions.
fn spin_until(predicate: impl Fn() -> bool) {
    while !predicate() {
        std::thread::yield_now();
    }
}

#[test]
fn client_disconnect_cancels_running_and_queued_jobs() {
    let gate = Gate::new();
    let hold = gate.clone();
    let config = ServerConfig::default()
        .workers(1)
        .queue_capacity(8)
        .fault_factory(Arc::new(move |_seq| {
            FaultPlan::none().hold_before_run(hold.clone())
        }));
    let handle =
        Server::bind(&Endpoint::tcp("127.0.0.1:0"), config).expect("bind");

    let mut client = Client::connect(&handle.local_endpoint()).expect("connect");
    // job A reaches the (single) worker and parks at the gate…
    client.send(&verify_with_id("a")).expect("send a");
    gate.await_blocked(1);
    // …so job B stays queued behind it
    client.send(&verify_with_id("b")).expect("send b");
    client.send(&Request::Ping).expect("fence");
    assert!(matches!(client.recv().expect("pong"), Response::Pong),
            "fence: job B admitted before we disconnect");

    drop(client); // disconnect: cancel A's token, purge B

    // the purge counter moving is the fence that A's cancel landed
    // (disconnect_cleanup cancels running tokens before purging)
    spin_until(|| handle.stats().cancelled_queued == 1);
    gate.open(); // release A into its now-cancelled harness
    spin_until(|| handle.stats().exhausted == 1);

    let stats = handle.stats();
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.exhausted, 1, "A stopped by cancellation, no verdict");
    assert_eq!(stats.cancelled_queued, 1, "B purged unrun");
    assert_eq!(stats.verified + stats.rejected, 0);
    assert_eq!(stats.accounted(), stats.submitted, "nothing silently dropped");

    handle.shutdown();
    handle.join();
}

#[test]
fn queue_full_answers_overloaded_and_never_drops() {
    let gate = Gate::new();
    let hold = gate.clone();
    let config = ServerConfig::default()
        .workers(1)
        .queue_capacity(3)
        .fault_factory(Arc::new(move |_seq| {
            FaultPlan::none().hold_before_run(hold.clone())
        }));
    let handle =
        Server::bind(&Endpoint::tcp("127.0.0.1:0"), config).expect("bind");

    let mut client = Client::connect(&handle.local_endpoint()).expect("connect");
    // job 0 occupies the single worker (parked at the gate), leaving
    // the queue empty…
    client.send(&verify_with_id("job-0")).expect("send");
    gate.await_blocked(1);
    // …jobs 1..=3 fill the queue to its capacity of 3
    for i in 1..=3 {
        client.send(&verify_with_id(&format!("job-{i}"))).expect("send");
    }
    client.send(&Request::Ping).expect("fence");
    assert!(matches!(client.recv().expect("pong"), Response::Pong),
            "fence: the queue is now full");

    // the next submission must be rejected *immediately* and *explicitly*
    client.send(&verify_with_id("job-4")).expect("send");
    match client.recv().expect("rejection") {
        Response::Error { code, id, .. } => {
            assert_eq!(code, ErrorCode::Overloaded);
            assert_eq!(id.as_deref(), Some("job-4"), "the reject names the job");
        }
        other => panic!("expected overloaded error, got {other:?}"),
    }

    // release the backlog; all four accepted jobs must answer
    gate.open();
    let mut seen = Vec::new();
    for _ in 0..4 {
        match client.recv().expect("result") {
            Response::Result(r) => {
                assert_eq!(r.outcome, "verified");
                seen.push(r.id.expect("id echoed"));
            }
            other => panic!("expected result, got {other:?}"),
        }
    }
    seen.sort();
    assert_eq!(seen, ["job-0", "job-1", "job-2", "job-3"]);

    let stats = handle.stats();
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.verified, 4);
    assert_eq!(stats.overloaded, 1);
    assert_eq!(stats.accounted(), stats.submitted);

    handle.shutdown();
    handle.join();
}

#[test]
fn drain_rejects_new_jobs_but_finishes_the_backlog() {
    let gate = Gate::new();
    let hold = gate.clone();
    let config = ServerConfig::default()
        .workers(1)
        .queue_capacity(8)
        .fault_factory(Arc::new(move |_seq| {
            FaultPlan::none().hold_before_run(hold.clone())
        }));
    let handle =
        Server::bind(&Endpoint::tcp("127.0.0.1:0"), config).expect("bind");

    let mut client = Client::connect(&handle.local_endpoint()).expect("connect");
    client.send(&verify_with_id("before-0")).expect("send");
    gate.await_blocked(1);
    client.send(&verify_with_id("before-1")).expect("send");
    client.send(&Request::Shutdown).expect("send");
    assert!(matches!(client.recv().expect("ack"), Response::ShuttingDown));

    // a post-drain submission is explicitly refused, not queued
    client.send(&verify_with_id("late")).expect("send");
    match client.recv().expect("refusal") {
        Response::Error { code, id, .. } => {
            assert_eq!(code, ErrorCode::Draining);
            assert_eq!(id.as_deref(), Some("late"));
        }
        other => panic!("expected draining error, got {other:?}"),
    }

    // the in-flight and queued jobs still complete with real verdicts
    gate.open();
    let mut seen = Vec::new();
    for _ in 0..2 {
        match client.recv().expect("result") {
            Response::Result(r) => {
                assert_eq!(r.outcome, "verified");
                seen.push(r.id.expect("id"));
            }
            other => panic!("expected result, got {other:?}"),
        }
    }
    seen.sort();
    assert_eq!(seen, ["before-0", "before-1"]);

    // join returning is the drain guarantee: backlog served, pool gone
    handle.join();
}
