//! Soak test: many concurrent clients hammering one daemon with a mix
//! of verifying, rejecting, and budget-exhausting jobs.
//!
//! Asserts the service invariants the subsystem exists for:
//!
//! * every submitted job gets **exactly one** response, matched by id —
//!   an explicit verdict, an explicit `exhausted`, or an explicit
//!   `overloaded`; nothing is silently dropped;
//! * each daemon outcome equals the single-shot outcome of running
//!   [`proofver::verify_harnessed`] directly with the same budget (the
//!   exact pipeline `satverify check` runs);
//! * at quiescence the stats counters account for every submission.

use std::collections::HashMap;
use std::sync::Arc;

use cdcl::SolverConfig;
use proofver::{verify_harnessed, Budget, CheckMode, Harness, Outcome};
use satverifyd::{
    BudgetSpec, Client, Endpoint, ErrorCode, Request, Response, Server,
    ServerConfig, VerifyRequest,
};

const CLIENTS: usize = 8;
const JOBS_PER_CLIENT: usize = 9;

/// One kind of job in the mix: inputs, budget, and the outcome the
/// daemon must report for them.
struct JobKind {
    name: &'static str,
    formula: String,
    proof: String,
    budget: BudgetSpec,
    expected: String,
}

fn dimacs_of(formula: &cnf::CnfFormula) -> String {
    let mut out = Vec::new();
    cnf::write_dimacs(&mut out, formula).expect("write dimacs");
    String::from_utf8(out).expect("utf8")
}

fn proof_text_of(proof: &proofver::ConflictClauseProof) -> String {
    let mut out = Vec::new();
    proofver::write_proof(&mut out, proof).expect("write proof");
    String::from_utf8(out).expect("utf8")
}

/// The daemon outcome [`verify_harnessed`] itself produces for this
/// kind — the soak's ground truth.
fn single_shot_outcome(kind: &JobKind) -> String {
    let formula = cnf::parse_dimacs_str(&kind.formula).expect("formula");
    let proof = proofver::parse_proof_str(&kind.proof).expect("proof");
    let harness =
        Harness::with_budget(kind.budget.resolve(&Budget::unlimited()));
    match verify_harnessed(&formula, &proof, CheckMode::MarkedOnly, &harness) {
        Outcome::Verified(_) => "verified".into(),
        Outcome::Rejected { .. } => "rejected".into(),
        Outcome::Exhausted { .. } => "exhausted".into(),
    }
}

fn job_kinds() -> Vec<JobKind> {
    // a real solver-produced proof of a pigeonhole instance…
    let php = cnfgen::pigeonhole(4);
    let run = match satverify::solve_and_verify(&php, SolverConfig::default())
        .expect("solve php(4)")
    {
        satverify::PipelineOutcome::Unsat(run) => run,
        satverify::PipelineOutcome::Sat(_) => panic!("php(4) is UNSAT"),
    };
    let php_text = dimacs_of(&php);
    let php_proof = proof_text_of(&run.proof);
    // …a proof that is not a refutation of the XOR square…
    let xor = "p cnf 2 4\n1 2 0\n-1 -2 0\n1 -2 0\n-1 2 0\n".to_string();
    let kinds = vec![
        JobKind {
            name: "good",
            formula: php_text.clone(),
            proof: php_proof.clone(),
            budget: BudgetSpec::default(),
            expected: "verified".into(),
        },
        JobKind {
            name: "bad",
            formula: xor,
            proof: "1 2 0\n0\n".into(),
            budget: BudgetSpec::default(),
            expected: "rejected".into(),
        },
        // …and the same real proof under a starvation budget
        JobKind {
            name: "tight",
            formula: php_text,
            proof: php_proof,
            budget: BudgetSpec {
                max_propagations: Some(1),
                ..BudgetSpec::default()
            },
            expected: "exhausted".into(),
        },
    ];
    for kind in &kinds {
        assert_eq!(
            single_shot_outcome(kind),
            kind.expected,
            "kind {:?} must reproduce its outcome single-shot",
            kind.name
        );
    }
    kinds
}

#[test]
fn soak_concurrent_mixed_jobs_all_accounted() {
    let kinds = Arc::new(job_kinds());
    let config = ServerConfig::default().workers(4).queue_capacity(32);
    let handle =
        Server::bind(&Endpoint::tcp("127.0.0.1:0"), config).expect("bind");
    let endpoint = handle.local_endpoint();

    let total_jobs = CLIENTS * JOBS_PER_CLIENT;
    assert!(total_jobs >= 64, "soak must exercise at least 64 jobs");

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let endpoint = endpoint.clone();
            let kinds = Arc::clone(&kinds);
            std::thread::spawn(move || {
                let mut client = Client::connect(&endpoint).expect("connect");
                let mut expected: HashMap<String, String> = HashMap::new();
                for j in 0..JOBS_PER_CLIENT {
                    let kind = &kinds[j % kinds.len()];
                    let id = format!("c{c}-j{j}-{}", kind.name);
                    expected.insert(id.clone(), kind.expected.clone());
                    let request = Request::Verify(VerifyRequest {
                        id: Some(id),
                        formula: Some(kind.formula.clone()),
                        proof: Some(kind.proof.clone()),
                        budget: kind.budget.clone(),
                        ..VerifyRequest::default()
                    });
                    client.send(&request).expect("send");
                }
                // exactly one response per job, matched by id
                let mut overloaded = 0u64;
                for _ in 0..JOBS_PER_CLIENT {
                    match client.recv().expect("response") {
                        Response::Result(r) => {
                            let id = r.id.expect("id echoed");
                            let want = expected
                                .remove(&id)
                                .expect("one response per id");
                            assert_eq!(
                                r.outcome, want,
                                "daemon outcome for {id} diverges from \
                                 the single-shot checker"
                            );
                        }
                        Response::Error {
                            code: ErrorCode::Overloaded,
                            id,
                            ..
                        } => {
                            let id = id.expect("overload names its job");
                            expected.remove(&id).expect("one response per id");
                            overloaded += 1;
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                assert!(expected.is_empty(), "every job answered");
                overloaded
            })
        })
        .collect();

    let overloaded_seen: u64 =
        clients.into_iter().map(|t| t.join().expect("client thread")).sum();

    let stats = handle.stats();
    assert_eq!(stats.submitted, total_jobs as u64);
    assert_eq!(stats.overloaded, overloaded_seen,
               "every overload was delivered to a client");
    assert_eq!(
        stats.accounted(),
        stats.submitted,
        "counters sum to submissions: nothing dropped ({stats:?})"
    );
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.in_flight, 0);
    assert!(stats.verified > 0, "mix included verifying jobs");
    assert!(stats.rejected > 0, "mix included rejecting jobs");
    assert!(stats.exhausted > 0, "mix included budget-exhausting jobs");

    // stats over the wire agree with the in-process snapshot
    let mut probe = Client::connect(&endpoint).expect("connect");
    match probe.request(&Request::Stats).expect("stats") {
        Response::Stats(reply) => {
            assert_eq!(reply.counter("submitted"), Some(stats.submitted));
            assert_eq!(reply.counter("verified"), Some(stats.verified));
            assert_eq!(reply.counter("rejected"), Some(stats.rejected));
            assert_eq!(reply.counter("exhausted"), Some(stats.exhausted));
            assert_eq!(reply.counter("overloaded"), Some(stats.overloaded));
        }
        other => panic!("unexpected response {other:?}"),
    }

    handle.shutdown();
    handle.join();
}
