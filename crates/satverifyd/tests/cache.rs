//! Verdict-cache semantics, end to end: a cache-served verdict is
//! byte-identical to a fresh one for every storable outcome, N
//! concurrent identical submissions run exactly one verification,
//! fingerprint collisions are never served, evictions respect the byte
//! budget, and a leader whose client disconnects hands the flight to a
//! parked follower instead of fanning out its cancellation.
//!
//! Same no-sleep [`Gate`] + ping-fence discipline as `tests/service.rs`.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use obs::EventLog;
use proofver::{FaultPlan, Gate};
use satverifyd::cache::{self, CacheKey};
use satverifyd::{
    BudgetSpec, Client, Endpoint, Request, Response, Server, ServerConfig,
    VerifyRequest, VerdictCache,
};

const XOR_SQUARE: &str = "p cnf 2 4\n1 2 0\n-1 -2 0\n1 -2 0\n-1 2 0\n";
const XOR_PROOF: &str = "2 0\n-2 0\n0\n";
const BAD_PROOF: &str = "0\n";

fn spin_until(predicate: impl Fn() -> bool) {
    while !predicate() {
        std::thread::yield_now();
    }
}

fn job(id: &str, proof: &str, budget: BudgetSpec) -> Request {
    Request::Verify(VerifyRequest {
        id: Some(id.to_string()),
        formula: Some(XOR_SQUARE.to_string()),
        proof: Some(proof.to_string()),
        budget,
        ..VerifyRequest::default()
    })
}

fn cached_server() -> satverifyd::ServerHandle {
    let config = ServerConfig::default().workers(1).cache_enabled(true);
    Server::bind(&Endpoint::tcp("127.0.0.1:0"), config).expect("bind")
}

fn recv_result(client: &mut Client) -> satverifyd::JobResult {
    match client.recv().expect("recv") {
        Response::Result(r) => r,
        other => panic!("expected a result, got {other:?}"),
    }
}

/// A verdict served from the cache is byte-identical (modulo the
/// submitter's `id` and wall-clock latency, which are per-response by
/// design) to the verdict a fresh verification produces — for all three
/// storable outcomes.
#[test]
fn cache_served_verdict_is_byte_identical_to_fresh() {
    let cases: [(&str, &str, BudgetSpec); 3] = [
        ("verified", XOR_PROOF, BudgetSpec::default()),
        ("rejected", BAD_PROOF, BudgetSpec::default()),
        (
            "exhausted",
            XOR_PROOF,
            BudgetSpec { max_propagations: Some(1), ..BudgetSpec::default() },
        ),
    ];
    for (expect, proof, budget) in cases {
        let handle = cached_server();
        let mut client = Client::connect(&handle.local_endpoint()).expect("connect");
        client.send(&job("fresh", proof, budget.clone())).expect("send");
        let fresh = recv_result(&mut client);
        assert_eq!(fresh.outcome, expect, "fresh {expect}: {fresh:?}");
        spin_until(|| handle.stats().cache_misses == 1);

        client.send(&job("served", proof, budget)).expect("send");
        let served = recv_result(&mut client);
        assert_eq!(served.id.as_deref(), Some("served"), "submitter's own id");
        let snapshot = handle.stats();
        assert_eq!(snapshot.cache_hits, 1, "{expect}: second submission hit");
        assert_eq!(snapshot.verify_us.count, 1, "{expect}: one verification ran");

        let fresh_line = Response::Result(cache::normalize(&fresh)).to_line();
        let served_line = Response::Result(cache::normalize(&served)).to_line();
        assert_eq!(fresh_line, served_line, "{expect}: verdicts differ");

        // a hit is still a disposition: both submissions are accounted
        assert_eq!(snapshot.accounted(), 2, "{expect}");
        // ... but only real runs enter the verify histogram; hits get
        // their own series
        assert_eq!(snapshot.cache_hit_us.count, 1, "{expect}");
        assert_eq!(snapshot.e2e_us.count, 2, "{expect}: hits still count e2e");

        handle.shutdown();
        handle.join();
    }
}

/// N concurrent identical submissions: one leader verifies, the rest
/// coalesce onto its flight and are fanned the same verdict — exactly
/// one verification runs, and every submitter gets a response bearing
/// its own id.
#[test]
fn single_flight_coalesces_concurrent_identical_jobs() {
    let gate = Gate::new();
    let hold = gate.clone();
    let config = ServerConfig::default()
        .workers(1)
        .cache_enabled(true)
        .fault_factory(Arc::new(move |_seq| {
            FaultPlan::none().hold_before_run(hold.clone())
        }));
    let handle = Server::bind(&Endpoint::tcp("127.0.0.1:0"), config).expect("bind");

    let mut client = Client::connect(&handle.local_endpoint()).expect("connect");
    client.send(&job("n-0", XOR_PROOF, BudgetSpec::default())).expect("send");
    gate.await_blocked(1);
    for i in 1..4 {
        client
            .send(&job(&format!("n-{i}"), XOR_PROOF, BudgetSpec::default()))
            .expect("send");
    }
    client.send(&Request::Ping).expect("fence");
    assert!(matches!(client.recv().expect("pong"), Response::Pong));
    // the fence proves all four were admitted before the leader ran
    assert_eq!(handle.stats().cache_coalesced, 3, "three followers parked");

    gate.open();
    let mut ids = Vec::new();
    for _ in 0..4 {
        let result = recv_result(&mut client);
        assert_eq!(result.outcome, "verified");
        ids.push(result.id.expect("id echoed"));
    }
    ids.sort();
    assert_eq!(ids, ["n-0", "n-1", "n-2", "n-3"], "every submitter answered");

    let snapshot = handle.stats();
    assert_eq!(snapshot.verify_us.count, 1, "exactly one verification ran");
    assert_eq!(snapshot.cache_misses, 1);
    assert_eq!(snapshot.cache_hits, 0, "followers coalesced, not hit");
    assert_eq!(snapshot.verified, 4, "each coalesced job is a disposition");
    assert_eq!(snapshot.e2e_us.count, 4);

    handle.shutdown();
    handle.join();
}

/// Two keys with the same 64-bit fingerprint but different content must
/// never share a verdict: equality is on the full key bytes, the hash
/// is only a bucket index.
#[test]
fn fingerprint_collision_is_never_served() {
    let cache: VerdictCache<u32> = VerdictCache::new(1 << 20);
    let a = CacheKey::from_raw_parts(42, b"formula-a".to_vec());
    let b = CacheKey::from_raw_parts(42, b"formula-b".to_vec());

    assert!(matches!(cache.admit(&a, 1), cache::Admit::Leader(1)));
    let verdict = satverifyd::JobResult {
        outcome: "verified".to_string(),
        ..satverifyd::JobResult::default()
    };
    cache.complete(&a, Some(&verdict));
    assert_eq!(cache.entry_count(), 1);

    // same bucket, different content: a fresh flight, not a hit
    match cache.admit(&b, 2) {
        cache::Admit::Leader(2) => {}
        cache::Admit::Hit { .. } => panic!("collision served a verdict"),
        _ => panic!("collision coalesced onto a different flight"),
    }
}

/// A byte budget too small for two entries evicts the older one, and
/// the evicted entry misses on resubmission.
#[test]
fn eviction_respects_the_byte_budget() {
    // one entry costs its key bytes plus per-entry overhead; a budget
    // holding one 48-byte-key entry but not two forces an eviction
    let cache: VerdictCache<u32> = VerdictCache::new(250);
    let verdict = satverifyd::JobResult {
        outcome: "verified".to_string(),
        ..satverifyd::JobResult::default()
    };
    let a = CacheKey::from_raw_parts(1, vec![b'a'; 48]);
    let b = CacheKey::from_raw_parts(2, vec![b'b'; 48]);
    assert!(matches!(cache.admit(&a, 1), cache::Admit::Leader(_)));
    let (_, evictions) = cache.complete(&a, Some(&verdict));
    assert_eq!(evictions, 0);
    assert!(matches!(cache.admit(&b, 2), cache::Admit::Leader(_)));
    let (_, evictions) = cache.complete(&b, Some(&verdict));
    assert!(evictions >= 1, "storing b had to evict a");
    assert!(cache.bytes_used() <= 250, "budget holds after eviction");
    // the survivor still hits; the evicted key is a fresh flight again
    assert!(matches!(cache.admit(&b, 3), cache::Admit::Hit { .. }));
    assert!(matches!(cache.admit(&a, 4), cache::Admit::Leader(_)));
}

/// A `Vec<u8>` sink the test can read back through an `Arc`, to fence
/// on lifecycle events.
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().expect("sink").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The leader's client disconnects while its job is held: the
/// cancellation must not fan out to the coalesced follower from another
/// connection — the follower is promoted to a fresh run and still gets
/// its verdict.
#[test]
fn leader_disconnect_promotes_the_follower() {
    let gate = Gate::new();
    let hold = gate.clone();
    let buf = Arc::new(Mutex::new(Vec::new()));
    let log =
        Arc::new(EventLog::from_writer(Box::new(SharedSink(Arc::clone(&buf)))));
    let config = ServerConfig::default()
        .workers(1)
        .cache_enabled(true)
        .event_log(Arc::clone(&log))
        .fault_factory(Arc::new(move |_seq| {
            FaultPlan::none().hold_before_run(hold.clone())
        }));
    let handle = Server::bind(&Endpoint::tcp("127.0.0.1:0"), config).expect("bind");

    let mut leader = Client::connect(&handle.local_endpoint()).expect("connect");
    let mut follower = Client::connect(&handle.local_endpoint()).expect("connect");
    leader.send(&job("leader", XOR_PROOF, BudgetSpec::default())).expect("send");
    gate.await_blocked(1);
    follower
        .send(&job("follower", XOR_PROOF, BudgetSpec::default()))
        .expect("send");
    follower.send(&Request::Ping).expect("fence");
    assert!(matches!(follower.recv().expect("pong"), Response::Pong));
    assert_eq!(handle.stats().cache_coalesced, 1);

    drop(leader); // cancels the held run — but not the follower
    // `disconnected` is emitted after the cancel token flips, so once
    // it is in the log the held run is certain to observe cancellation
    spin_until(|| {
        log.flush().expect("flush");
        let text =
            String::from_utf8(buf.lock().expect("sink").clone()).expect("utf8");
        text.contains("\"disconnected\"")
    });
    gate.open();
    let result = recv_result(&mut follower);
    assert_eq!(result.id.as_deref(), Some("follower"));
    assert_eq!(result.outcome, "verified", "promotion re-ran the job");

    let snapshot = handle.stats();
    assert_eq!(snapshot.verified, 1);
    assert_eq!(snapshot.exhausted, 1, "the leader's run was cancelled");

    handle.shutdown();
    handle.join();
}
