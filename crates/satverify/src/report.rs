//! Machine-readable run reports.
//!
//! A [`RunReport`] gathers everything one `satverify` invocation
//! produced — solver statistics, proof-size statistics, the
//! verification report, per-phase span timings, and the metrics
//! registry — into a single [`obs::Json`] document suitable for
//! benchmark harnesses and regression tracking. The schema is
//! documented field-by-field in the repository README ("Observability"
//! section); `schema_version` is bumped whenever a field changes
//! meaning or disappears.

use std::io;
use std::path::Path;
use std::time::Duration;

use cdcl::SolverStats;
use obs::span::SpanSummary;
use obs::{Json, MetricsSnapshot};
use proofver::{ProofStats, VerificationReport};

/// Current value of the `schema_version` field.
pub const SCHEMA_VERSION: u64 = 1;

/// The fault-tolerant runtime's view of a `check` run: outcome
/// taxonomy, exhaustion cause, progress, and checkpoint activity.
/// Serialised under the report's `harness` key.
#[derive(Clone, Debug, Default)]
pub struct HarnessSummary {
    /// `"verified"`, `"rejected"`, or `"exhausted"` — mirrors
    /// [`proofver::Outcome`]. An exhausted run is *not* a verdict.
    pub outcome: String,
    /// Which limit stopped an exhausted run
    /// ([`proofver::ExhaustReason::as_str`]).
    pub exhaust_reason: Option<String>,
    /// Zero-based proof index of the clause whose check failed, for a
    /// rejected run (absent when the refutation itself was missing).
    pub rejected_step: Option<usize>,
    /// Conflict-clause checks completed before the run stopped.
    pub steps_checked: Option<usize>,
    /// Conflict clauses in the proof.
    pub steps_total: Option<usize>,
    /// Where a resumable checkpoint was written, if one was.
    pub checkpoint_path: Option<String>,
    /// Whether this run resumed from an earlier checkpoint.
    pub resumed: bool,
}

impl HarnessSummary {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.push("outcome", self.outcome.as_str());
        if let Some(reason) = &self.exhaust_reason {
            obj.push("exhaust_reason", reason.as_str());
        }
        if let Some(step) = self.rejected_step {
            obj.push("rejected_step", step);
        }
        if let Some(n) = self.steps_checked {
            obj.push("steps_checked", n);
        }
        if let Some(n) = self.steps_total {
            obj.push("steps_total", n);
        }
        if let Some(path) = &self.checkpoint_path {
            obj.push("checkpoint_path", path.as_str());
        }
        obj.push("resumed", Json::Bool(self.resumed));
        obj
    }
}

/// Everything a single run produced, ready for JSON serialisation.
///
/// Fields left `None` are omitted from the output rather than written
/// as `null`, so consumers can key presence off the command: a `solve`
/// run on a SAT instance has no `proof` or `verification` object.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Which CLI command (or library entry point) produced the report.
    pub command: String,
    /// Path of the input instance, if one was read from disk.
    pub instance_path: Option<String>,
    /// Variable count of the input formula.
    pub num_vars: Option<usize>,
    /// Clause count of the input formula.
    pub num_clauses: Option<usize>,
    /// Final answer: `"SAT"`, `"UNSAT"`, `"VERIFIED"`, `"NOT VERIFIED"`.
    pub result: Option<String>,
    /// Solver counters, when a solve happened.
    pub solver: Option<SolverStats>,
    /// Proof-size statistics, when a proof exists.
    pub proof: Option<ProofStats>,
    /// Verification outcome, when a proof was checked.
    pub verification: Option<VerificationReport>,
    /// Wall-clock solving time.
    pub solve_time: Option<Duration>,
    /// Wall-clock verification time.
    pub verify_time: Option<Duration>,
    /// The fault-tolerant runtime's outcome summary, when the run went
    /// through a harness (budgets, checkpoints).
    pub harness: Option<HarnessSummary>,
    /// Per-phase span aggregates drained from the collecting subscriber.
    pub spans: Vec<(String, SpanSummary)>,
    /// Metrics registry snapshot.
    pub metrics: Option<MetricsSnapshot>,
}

impl RunReport {
    /// Creates an empty report for `command`.
    #[must_use]
    pub fn new(command: &str) -> Self {
        RunReport { command: command.to_string(), ..RunReport::default() }
    }

    /// Drains the global collecting subscriber and snapshots the metrics
    /// registry into this report. Call once, after the instrumented work
    /// has finished.
    pub fn collect_observability(&mut self) {
        self.spans = obs::take_collected();
        self.spans.sort_by(|a, b| a.0.cmp(&b.0));
        self.metrics = Some(obs::registry_snapshot());
    }

    /// Serialises the report to the JSON document described in the
    /// README's "Observability" section.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        root.push("schema_version", SCHEMA_VERSION);
        root.push("tool", "satverify");
        root.push("command", self.command.as_str());
        if let Some(path) = &self.instance_path {
            root.push("instance_path", path.as_str());
        }
        if self.num_vars.is_some() || self.num_clauses.is_some() {
            let mut inst = Json::object();
            if let Some(v) = self.num_vars {
                inst.push("num_vars", v);
            }
            if let Some(c) = self.num_clauses {
                inst.push("num_clauses", c);
            }
            root.push("instance", inst);
        }
        if let Some(result) = &self.result {
            root.push("result", result.as_str());
        }
        if let Some(stats) = &self.solver {
            root.push("solver", solver_json(stats));
        }
        if let Some(stats) = &self.proof {
            root.push("proof", proof_json(stats));
        }
        if let Some(report) = &self.verification {
            root.push("verification", verification_json(report));
        }
        if let Some(harness) = &self.harness {
            root.push("harness", harness.to_json());
        }
        if self.solve_time.is_some() || self.verify_time.is_some() {
            let mut timing = Json::object();
            if let Some(t) = self.solve_time {
                timing.push("solve_s", t.as_secs_f64());
            }
            if let Some(t) = self.verify_time {
                timing.push("verify_s", t.as_secs_f64());
            }
            if let (Some(s), Some(v)) = (self.solve_time, self.verify_time) {
                timing.push("verify_over_solve", safe_ratio(v, s));
            }
            root.push("timing", timing);
        }
        root.push("spans", spans_json(&self.spans));
        if let Some(metrics) = &self.metrics {
            root.push("metrics", metrics_json(metrics));
        }
        root
    }

    /// Writes the pretty-printed report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying write.
    pub fn write_to_file(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty_string())
    }
}

fn safe_ratio(num: Duration, den: Duration) -> f64 {
    let den = den.as_secs_f64();
    if den == 0.0 {
        0.0
    } else {
        num.as_secs_f64() / den
    }
}

fn solver_json(s: &SolverStats) -> Json {
    let mut obj = Json::object();
    obj.push("decisions", s.decisions);
    obj.push("conflicts", s.conflicts);
    obj.push("propagations", s.propagations);
    obj.push("restarts", s.restarts);
    obj.push("learned_kept", s.learned_kept);
    obj.push("learned_deleted", s.learned_deleted);
    obj.push("reductions", s.reductions);
    obj.push("resolutions", s.resolutions);
    obj.push("proof_literals", s.proof_literals);
    obj.push("global_clauses", s.global_clauses);
    obj.push("local_clauses", s.local_clauses);
    obj.push("minimized_literals", s.minimized_literals);
    obj
}

fn proof_json(s: &ProofStats) -> Json {
    let mut obj = Json::object();
    obj.push("num_clauses", s.num_clauses);
    obj.push("num_literals", s.num_literals);
    obj.push("min_len", s.min_len);
    obj.push("max_len", s.max_len);
    obj.push("mean_len", s.mean_len);
    obj.push("median_len", s.median_len);
    obj.push("num_units", s.num_units);
    obj.push("num_long", s.num_long);
    obj.push("long_fraction", s.long_fraction());
    obj.push(
        "len_histogram",
        Json::Array(s.histogram.iter().map(|&n| Json::from(n)).collect()),
    );
    obj
}

fn verification_json(r: &VerificationReport) -> Json {
    let mut obj = Json::object();
    obj.push("num_original", r.num_original);
    obj.push("num_conflict_clauses", r.num_conflict_clauses);
    obj.push("num_checked", r.num_checked);
    obj.push("proof_literals", r.proof_literals);
    obj.push("core_size", r.core_size);
    obj.push("tested_fraction", r.tested_fraction());
    obj.push("core_fraction", r.core_fraction());
    obj.push("verify_time_s", r.verify_time.as_secs_f64());
    obj.push("propagations", r.propagations);
    obj.push("clause_visits", r.clause_visits);
    obj
}

fn spans_json(spans: &[(String, SpanSummary)]) -> Json {
    let mut arr = Vec::with_capacity(spans.len());
    for (name, summary) in spans {
        let mut obj = Json::object();
        obj.push("name", name.as_str());
        obj.push("count", summary.count);
        obj.push("total_s", summary.total.as_secs_f64());
        obj.push("min_s", summary.min.as_secs_f64());
        obj.push("max_s", summary.max.as_secs_f64());
        obj.push("mean_s", summary.mean().as_secs_f64());
        arr.push(obj);
    }
    Json::Array(arr)
}

fn metrics_json(m: &MetricsSnapshot) -> Json {
    let mut obj = Json::object();
    let mut counters = Json::object();
    for (name, value) in &m.counters {
        counters.push(name, *value);
    }
    obj.push("counters", counters);
    let mut gauges = Json::object();
    for (name, value) in &m.gauges {
        gauges.push(name, *value);
    }
    obj.push("gauges", gauges);
    let mut histograms = Json::object();
    for (name, h) in &m.histograms {
        let mut hist = Json::object();
        hist.push("count", h.count);
        hist.push("sum", h.sum);
        hist.push("min", h.min);
        hist.push("max", h.max);
        hist.push("mean", h.mean());
        hist.push(
            "buckets",
            Json::Array(
                h.buckets
                    .iter()
                    .map(|&(le, n)| {
                        let mut b = Json::object();
                        b.push("le", le);
                        b.push("count", n);
                        b
                    })
                    .collect(),
            ),
        );
        histograms.push(name, hist);
    }
    obj.push("histograms", histograms);
    obj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_has_required_keys() {
        let report = RunReport::new("solve");
        let json = report.to_json();
        assert_eq!(json.get("schema_version").and_then(Json::as_int), Some(1));
        assert_eq!(json.get("tool").and_then(Json::as_str), Some("satverify"));
        assert_eq!(json.get("command").and_then(Json::as_str), Some("solve"));
        assert!(json.get("solver").is_none(), "no solver stats recorded");
        assert!(json.get("spans").is_some());
    }

    #[test]
    fn optional_sections_appear_when_set() {
        let mut report = RunReport::new("solve");
        report.num_vars = Some(12);
        report.num_clauses = Some(34);
        report.result = Some("UNSAT".to_string());
        report.solver = Some(SolverStats { conflicts: 7, ..SolverStats::default() });
        report.solve_time = Some(Duration::from_millis(20));
        report.verify_time = Some(Duration::from_millis(40));
        let json = report.to_json();
        let instance = json.get("instance").expect("instance");
        assert_eq!(instance.get("num_vars").and_then(Json::as_int), Some(12));
        let solver = json.get("solver").expect("solver");
        assert_eq!(solver.get("conflicts").and_then(Json::as_int), Some(7));
        let timing = json.get("timing").expect("timing");
        let ratio = timing.get("verify_over_solve").and_then(Json::as_f64).expect("ratio");
        assert!((ratio - 2.0).abs() < 1e-9, "{ratio}");
    }

    #[test]
    fn harness_section_serialises_when_present() {
        let mut report = RunReport::new("check");
        report.harness = Some(HarnessSummary {
            outcome: "exhausted".to_string(),
            exhaust_reason: Some("deadline".to_string()),
            steps_checked: Some(3),
            steps_total: Some(10),
            checkpoint_path: Some("/tmp/cp.json".to_string()),
            resumed: true,
            ..HarnessSummary::default()
        });
        let json = report.to_json();
        let harness = json.get("harness").expect("harness");
        assert_eq!(harness.get("outcome").and_then(Json::as_str), Some("exhausted"));
        assert_eq!(
            harness.get("exhaust_reason").and_then(Json::as_str),
            Some("deadline")
        );
        assert_eq!(harness.get("steps_checked").and_then(Json::as_int), Some(3));
        assert!(matches!(harness.get("resumed"), Some(Json::Bool(true))));
        assert!(harness.get("rejected_step").is_none());
    }

    #[test]
    fn report_round_trips_through_parser() {
        let mut report = RunReport::new("check");
        report.result = Some("VERIFIED".to_string());
        report.verification = Some(VerificationReport {
            num_original: 10,
            num_conflict_clauses: 5,
            num_checked: 4,
            core_size: 9,
            ..VerificationReport::default()
        });
        let text = report.to_json().to_pretty_string();
        let parsed = obs::json::parse(&text).expect("valid JSON");
        let v = parsed.get("verification").expect("verification");
        assert_eq!(v.get("num_checked").and_then(Json::as_int), Some(4));
        assert_eq!(v.get("tested_fraction").and_then(Json::as_f64), Some(0.8));
    }
}
