//! The `satverify` command-line tool: solve DIMACS files with verified
//! answers, check proofs, extract cores, trim proofs, and generate
//! benchmark instances.
//!
//! Exit codes follow the SAT-competition convention where applicable:
//! `10` = SAT, `20` = UNSAT (verified), `0` = success for non-solving
//! commands, `1` = failure (bad proof, unverifiable answer), `2` = usage
//! error.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read};
use std::path::Path;
use std::process::ExitCode;

use std::time::Duration;

use cdcl::{LearningScheme, SolverConfig};
use cnf::{parse_dimacs, write_dimacs, CnfFormula};
use proofver::{
    decode_proof, encode_proof, parse_proof, resume_verification_with_engine,
    verify_all_parallel_harnessed_with_engine, verify_harnessed_with_engine,
    write_proof, Budget, CheckMode, Checkpoint, CheckpointError,
    ConflictClauseProof, Harness, Outcome, ProofStats, PropagatorChoice,
    StreamCheckpoint, StreamConfig, StreamError, StreamOutcome, MAGIC,
};
use satverifyd::{
    BudgetSpec, Client, Endpoint, ErrorCode as WireError, IoModel,
    Request as WireRequest, Response as WireResponse, RetryPolicy, Router,
    RouterConfig, Server, ServerConfig, VerifyRequest, DEFAULT_CACHE_BYTES,
};
use satverify::{
    minimal_core_of_verified, minimize_core, solve_and_verify,
    solve_and_verify_preprocessed, HarnessSummary, PipelineOutcome, RunReport,
    SimplifyConfig,
};

const USAGE: &str = "\
satverify — SAT solving with independently verified answers
(Goldberg & Novikov, DATE 2003)

USAGE:
    satverify solve <cnf> [--proof <out>] [--binary] [--scheme <s>]
                          [--max-conflicts <n>] [--preprocess]
                          [--json <path>] [--trace] [--metrics]
        solve a DIMACS file; on UNSAT the proof is verified before the
        answer is reported, and optionally written to <out>.
        --preprocess runs subsumption + variable elimination first (the
        stitched proof still verifies against the original formula).
        schemes: 1uip (default), decision, mixed:<period>

    satverify check <cnf> <proof> [--all] [--parallel <n>]
                          [--proof-format <native|drat>]
                          [--emit-lrat <path>] [--emit-trimmed <path>]
                          [--emit-binary]
                          [--max-propagations <n>] [--max-clause-visits <n>]
                          [--max-memory-mb <n>] [--timeout-ms <n>]
                          [--checkpoint <path>] [--resume]
                          [--stream] [--memory-budget <mb>]
                          [--window-kb <n>] [--granule-kb <n>]
                          [--event-log <path>]
                          [--json <path>] [--trace] [--metrics]
        verify a proof (text or binary, auto-detected);
        --all checks every clause (Proof_verification1); --parallel
        splits the --all check across <n> panic-isolated workers.
        --proof-format drat ingests a standard DRAT proof (additions
        and deletions, drat-trim text or binary encoding) and checks
        it backward with core-first marking; --emit-lrat writes the
        LRAT certificate recorded during that pass, --emit-trimmed
        the trimmed DRAT proof (--emit-binary selects the binary
        encodings). Formats contract: docs/FORMATS.md.
        --stream (binary DRAT only) checks the proof in bounded
        memory by windows, never holding more than --memory-budget
        <mb> (default 64) of proof state; with --checkpoint a durable
        checkpoint is written at every window boundary and --resume
        continues a killed run mid-proof. --event-log appends one
        JSON line per window-lifecycle event.
        Budget flags bound the run: when a limit is hit the result is
        s UNKNOWN (exit 4) — never a verdict. With --checkpoint, an
        interrupted sequential run writes its progress there, and
        --resume continues from it (finishing with a report identical,
        modulo timing, to an uninterrupted run).
        exit codes: 0 verified, 1 proof rejected, 2 usage error,
        3 malformed input, 4 budget exhausted

    satverify lrat <cnf> <lrat>
        replay an LRAT certificate (text or binary, auto-detected)
        against the formula with the in-repo hint checker;
        exit codes: 0 valid, 1 invalid, 2 usage, 3 malformed

    Observability (solve and check):
        --json <path>  write a machine-readable RunReport (solver stats,
                       proof stats, verification report, span timings,
                       metrics registry) as JSON to <path>
        --trace        print per-phase span timings to stderr
        --metrics      print the metrics registry to stderr

    satverify serve [--listen <ep>] [--workers <n>] [--queue-capacity <n>]
                    [--cache-mb <n>] [--no-cache] [--io <reactor|threads>]
                    [budget flags] [--drain-on-stdin-close]
                    [--event-log <path>]
        run the verification daemon: accept jobs over tcp:HOST:PORT or
        unix:PATH (default tcp:127.0.0.1:0; the bound endpoint is
        printed), check them on a bounded worker pool, and drain
        gracefully on a `shutdown` request. Budget flags set the
        per-job default; requests may tighten or override it.
        Identical inline submissions are served from a content-addressed
        verdict cache (--cache-mb sets the byte budget, default 64;
        --no-cache verifies every submission); --io selects the
        connection I/O model (default reactor on unix: one poller thread
        for any number of connections).
        --event-log appends one JSON line per job-lifecycle event
        (received, admitted, rejected, started, terminal — schema in
        docs/OBSERVABILITY.md).

    satverify route [--listen <ep>] --backend <ep> [--backend <ep>]...
                    [--health-interval-ms <n>] [--event-log <path>]
        run the sharding front tier: speak the same protocol as `serve`,
        hash each job's formula to a home backend, skip unhealthy
        backends, and re-route jobs bounced by a draining backend so no
        submission loses its disposition. `stats` against the router
        reports per-backend forwarding counters; `shutdown` drains it.

    satverify client <endpoint> ping|stats|metrics|shutdown
    satverify client <endpoint> check <cnf> <proof> [--all] [--by-path]
                     [--proof-format <native|drat>] [--stream]
                     [--no-retry] [budget flags]
    satverify client <endpoint> batch <jobs.jsonl> [--no-retry]
        talk to a running daemon. `stats` prints counters and µs
        latency percentiles (queue wait, verify, end-to-end); `metrics`
        dumps the daemon's registry in Prometheus text exposition.
        `check` submits one job (file contents are sent inline unless
        --by-path passes server-local paths) and prints the same report
        as the local `check`; --stream (with --proof-format drat and
        --by-path) runs the daemon's windowed bounded-memory checker,
        with --max-memory-mb as the residency cap. `batch` submits one
        verify job per JSONL line in a single pipelined round trip and
        prints one result line per job in submission order (jobs
        without an `id` get `job-<line>`); its exit code is the worst
        job's. Transient connect failures are retried with capped
        exponential backoff and jitter (--no-retry tries once; retries
        are per-connection, never per-job); exit codes are the `check`
        contract plus 5 = daemon unavailable (unreachable, overloaded,
        or draining).

    satverify drat <cnf> <proof>
        verify a proof that may contain RAT steps (DRAT semantics)

    satverify core <cnf> [--minimize|--mus] [--out <file>]
        solve, verify, and print/write the unsatisfiable core;
        --minimize iterates re-solving to a fixpoint, --mus extracts a
        minimal unsatisfiable subset via incremental assumptions

    satverify trim <cnf> <proof-in> <proof-out> [--binary]
        verify a proof and write back only the contributing clauses

    satverify aig <aag-file> [--output <i>]
        parse an AIGER ASCII circuit, assert output <i> (default 0) true,
        and solve the resulting CNF with a verified answer — UNSAT means
        the output is constant false (e.g. a proven miter)

    satverify gen <family> <args..> [--out <file>]
        families: php <holes> | tseitin <n> <m> | chess <n> |
                  pebbling <h> | rand3sat <vars> <clauses> <seed> |
                  eqv-adder <w> | eqv-shifter <w> <s> | pipe-cpu <w> |
                  bmc-counter <bits> <k> | bmc-lfsr <bits> <k> |
                  stream-chain <links> (writes <out>.cnf + <out>.drat,
                  a small formula with a proof ~14 bytes per link for
                  exercising `check --stream`)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    let rest = &args[1..];
    match command.as_str() {
        "solve" => cmd_solve(rest),
        "check" => cmd_check(rest),
        "serve" => cmd_serve(rest),
        "route" => cmd_route(rest),
        "client" => cmd_client(rest),
        "drat" => cmd_drat(rest),
        "lrat" => cmd_lrat(rest),
        "core" => cmd_core(rest),
        "trim" => cmd_trim(rest),
        "gen" => cmd_gen(rest),
        "aig" => cmd_aig(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}; try `satverify help`")),
    }
}

fn load_formula(path: &str) -> Result<CnfFormula, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    parse_dimacs(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

fn load_proof(path: &str) -> Result<ConflictClauseProof, String> {
    let mut file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut head = [0u8; 4];
    let n = file.read(&mut head).map_err(|e| format!("{path}: {e}"))?;
    let file = File::open(path).map_err(|e| format!("cannot reopen {path}: {e}"))?;
    if n == 4 && head == MAGIC {
        decode_proof(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
    } else {
        parse_proof(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
    }
}

fn parse_scheme(text: &str) -> Result<LearningScheme, String> {
    match text {
        "1uip" => Ok(LearningScheme::FirstUip),
        "decision" => Ok(LearningScheme::Decision),
        _ => text
            .strip_prefix("mixed:")
            .and_then(|p| p.parse::<u32>().ok())
            .map(|period| LearningScheme::Mixed { period })
            .ok_or_else(|| format!("bad scheme {text:?} (1uip|decision|mixed:<n>)")),
    }
}

/// Pulls `--flag value` out of an argument list; returns remaining
/// positional arguments.
fn take_option(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// The observability flags shared by `solve` and `check`:
/// `--json <path>`, `--trace`, `--metrics`.
struct ObsOptions {
    json: Option<String>,
    trace: bool,
    metrics: bool,
}

impl ObsOptions {
    /// Extracts the flags and, if any were given, switches the global
    /// telemetry on (collecting subscriber + metrics recording) before
    /// the instrumented work starts.
    fn take(args: &mut Vec<String>) -> ObsOptions {
        let opts = ObsOptions {
            json: take_option(args, "--json"),
            trace: take_flag(args, "--trace"),
            metrics: take_flag(args, "--metrics"),
        };
        if opts.enabled() {
            obs::CollectingSubscriber::install();
            obs::metrics::set_recording(true);
        }
        opts
    }

    fn enabled(&self) -> bool {
        self.json.is_some() || self.trace || self.metrics
    }

    /// Gathers the collected telemetry into `report` and emits it as
    /// requested: span/metric tables on stderr, JSON to `--json <path>`.
    fn emit(&self, mut report: RunReport) -> Result<(), String> {
        if !self.enabled() {
            return Ok(());
        }
        report.collect_observability();
        if self.trace {
            eprintln!("c spans (count, total, mean, min, max):");
            for (name, s) in &report.spans {
                eprintln!(
                    "c   {name:<24} {:>9} {:>11.6}s {:>11.9}s {:>11.9}s {:>11.9}s",
                    s.count,
                    s.total.as_secs_f64(),
                    s.mean().as_secs_f64(),
                    s.min.as_secs_f64(),
                    s.max.as_secs_f64(),
                );
            }
        }
        if self.metrics {
            let snapshot = report.metrics.as_ref().expect("collected above");
            eprintln!("c counters:");
            for (name, value) in &snapshot.counters {
                eprintln!("c   {name:<28} {value}");
            }
            eprintln!("c gauges:");
            for (name, value) in &snapshot.gauges {
                eprintln!("c   {name:<28} {value}");
            }
            eprintln!("c histograms (count, mean, min, max):");
            for (name, h) in &snapshot.histograms {
                eprintln!(
                    "c   {name:<28} {:>9} {:>12.1} {:>9} {:>9}",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                );
            }
        }
        if let Some(path) = &self.json {
            report
                .write_to_file(Path::new(path))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("c run report written to {path}");
        }
        Ok(())
    }
}

fn cmd_solve(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let obs_opts = ObsOptions::take(&mut args);
    let proof_out = take_option(&mut args, "--proof");
    let binary = take_flag(&mut args, "--binary");
    let preprocess = take_flag(&mut args, "--preprocess");
    let scheme = match take_option(&mut args, "--scheme") {
        Some(s) => parse_scheme(&s)?,
        None => LearningScheme::FirstUip,
    };
    let max_conflicts = take_option(&mut args, "--max-conflicts")
        .map(|v| v.parse::<u64>().map_err(|_| format!("bad --max-conflicts {v:?}")))
        .transpose()?;
    let [path] = args.as_slice() else {
        return Err("usage: satverify solve <cnf> [options]".into());
    };
    let formula = load_formula(path)?;
    let mut report = RunReport::new("solve");
    report.instance_path = Some(path.clone());
    report.num_vars = Some(formula.num_vars());
    report.num_clauses = Some(formula.num_clauses());
    let config = SolverConfig::new()
        .learning_scheme(scheme)
        .max_conflicts(max_conflicts);
    let outcome = if preprocess {
        solve_and_verify_preprocessed(&formula, SimplifyConfig::default(), config)
    } else {
        solve_and_verify(&formula, config)
    };
    match outcome.map_err(|e| e.to_string())? {
        PipelineOutcome::Sat(model) => {
            println!("s SATISFIABLE");
            print!("v");
            for lit in model.to_lits() {
                print!(" {}", lit.to_dimacs());
            }
            println!(" 0");
            report.result = Some("SAT".to_string());
            obs_opts.emit(report)?;
            Ok(ExitCode::from(10))
        }
        PipelineOutcome::Unsat(run) => {
            println!("s UNSATISFIABLE");
            println!(
                "c proof verified: {} ({} clauses, {} literals)",
                run.verification.report,
                run.proof.len(),
                run.proof.num_literals()
            );
            if let Some(out) = proof_out {
                write_proof_file(&run.proof, &out, binary)?;
                println!("c proof written to {out}");
            }
            report.result = Some("UNSAT".to_string());
            report.solver = Some(run.stats);
            report.proof = Some(ProofStats::of(&run.proof));
            report.verification = Some(run.verification.report.clone());
            report.solve_time = Some(run.solve_time);
            report.verify_time = Some(run.verify_time);
            obs_opts.emit(report)?;
            Ok(ExitCode::from(20))
        }
    }
}

fn write_proof_file(
    proof: &ConflictClauseProof,
    path: &str,
    binary: bool,
) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut writer = BufWriter::new(file);
    if binary {
        encode_proof(&mut writer, proof).map_err(|e| format!("{path}: {e}"))
    } else {
        write_proof(&mut writer, proof).map_err(|e| format!("{path}: {e}"))
    }
}

/// `satverify check` exit codes — the failure-semantics contract. An
/// exhausted budget (4) is deliberately distinct from a rejected proof
/// (1): a run that stopped early carries no verdict.
const EXIT_VERIFIED: u8 = 0;
const EXIT_REJECTED: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_MALFORMED: u8 = 3;
const EXIT_EXHAUSTED: u8 = 4;

/// Parses one optional `--flag <u64>` argument; a present-but-garbage
/// value is a usage error.
fn take_u64_option(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<u64>, String> {
    take_option(args, flag)
        .map(|v| v.parse::<u64>().map_err(|_| format!("bad {flag} {v:?}")))
        .transpose()
}

/// Assembles the verification [`Budget`] from the `check` budget flags.
fn take_budget(args: &mut Vec<String>) -> Result<Budget, String> {
    let mut budget = Budget::unlimited();
    if let Some(n) = take_u64_option(args, "--max-propagations")? {
        budget = budget.max_propagations(n);
    }
    if let Some(n) = take_u64_option(args, "--max-clause-visits")? {
        budget = budget.max_clause_visits(n);
    }
    if let Some(mb) = take_u64_option(args, "--max-memory-mb")? {
        budget = budget.max_arena_bytes(mb.saturating_mul(1024 * 1024));
    }
    if let Some(ms) = take_u64_option(args, "--timeout-ms")? {
        budget = budget.timeout(Duration::from_millis(ms));
    }
    Ok(budget)
}

/// `satverify check --help`: the full contract, exit codes included.
const CHECK_HELP: &str = "\
satverify check — verify a conflict-clause proof of unsatisfiability

USAGE:
    satverify check <cnf> <proof> [--all] [--parallel <n>]
                    [--engine <watched|arena>]
                    [--proof-format <native|drat>]
                    [--emit-lrat <path>] [--emit-trimmed <path>]
                    [--emit-binary]
                    [--max-propagations <n>] [--max-clause-visits <n>]
                    [--max-memory-mb <n>] [--timeout-ms <n>]
                    [--checkpoint <path>] [--resume]
                    [--stream] [--memory-budget <mb>]
                    [--window-kb <n>] [--granule-kb <n>]
                    [--event-log <path>]
                    [--json <path>] [--trace] [--metrics]

The proof file may be text or binary (auto-detected). --all checks
every proof clause (Proof_verification1); the default checks only the
clauses marked as contributing (Proof_verification2). --parallel <n>
splits the --all check across n panic-isolated workers. --engine
selects the BCP clause layout: `watched` (the default, boxed clauses
with two watched literals) or `arena` (a flat literal arena with
blocking-literal watches). Both produce identical verdicts; `arena`
is the faster layout on large proofs.

--proof-format drat switches the proof language to standard DRAT
(drat-trim interchange: clause additions plus `d` deletions, text or
binary encoding, auto-detected) and checks it *backward* with
core-first marking — only the steps the refutation depends on are
verified, with a RAT fallback for steps that are not plain RUP. In
this mode --all/--parallel do not apply (the backward pass checks only
marked steps by construction) and are usage errors; without --stream,
--checkpoint/--resume do not apply either. --emit-lrat <path> writes
the LRAT certificate captured during the pass (re-checkable with
`satverify lrat` or any standard LRAT checker); --emit-trimmed <path>
writes the trimmed DRAT proof; --emit-binary selects the binary
encodings for both. The grammars and a worked example live in
docs/FORMATS.md.

--stream (requires --proof-format drat and a *binary* DRAT proof)
switches to the windowed streaming checker: the proof is indexed in
one forward pass, then checked backward window by window so resident
proof state never exceeds --memory-budget <mb> (default 64). Under
memory pressure the checker degrades (clause-store rebuild, then
window shrink down to --window-kb floors) before reporting
exhaustion — an out-of-budget run is `s UNKNOWN`, never a verdict.
With --checkpoint <path> a durable checkpoint (atomic write-rename)
is saved at every window boundary; --resume continues a killed run
from the last boundary and finishes with the identical verdict.
--window-kb sets the initial window size, --granule-kb the index
spacing (persisted in the checkpoint; the saved value wins on
resume). --event-log <path> appends one JSON line per stream
lifecycle event (schema in docs/OBSERVABILITY.md). --emit-lrat and
--emit-trimmed are not available in streaming mode.

Budget flags bound the run. A run that hits a limit stops with
`s UNKNOWN` — an exhausted budget is never a verdict. With
--checkpoint <path>, an interrupted sequential run saves its progress
there; --resume continues from it. A checkpoint records fingerprints
of the formula and proof it belongs to: resuming against different
inputs is refused as a usage error.

EXIT CODES:
    0    s VERIFIED      the proof derives the empty clause
    1    s NOT VERIFIED  the proof was rejected (with the failing step)
    2    usage error     bad flags, or a checkpoint that does not match
                         the given formula/proof (fingerprint mismatch),
                         or (--stream) a corrupt/unreadable checkpoint
    3    malformed input the formula, proof, or checkpoint file could
                         not be read or parsed, or (--stream) an I/O
                         fault while reading the proof
    4    s UNKNOWN       a budget limit was hit before a verdict
";

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    if take_flag(&mut args, "--help") || take_flag(&mut args, "-h") {
        print!("{CHECK_HELP}");
        return Ok(ExitCode::SUCCESS);
    }
    let obs_opts = ObsOptions::take(&mut args);
    let all = take_flag(&mut args, "--all");
    let checkpoint_path = take_option(&mut args, "--checkpoint");
    let resume = take_flag(&mut args, "--resume");
    let stream = take_flag(&mut args, "--stream");
    let memory_budget_mb = take_u64_option(&mut args, "--memory-budget")?;
    let window_kb = take_u64_option(&mut args, "--window-kb")?;
    let granule_kb = take_u64_option(&mut args, "--granule-kb")?;
    let event_log = take_option(&mut args, "--event-log");
    let proof_format = take_option(&mut args, "--proof-format");
    let emit = EmitOptions {
        lrat: take_option(&mut args, "--emit-lrat"),
        trimmed: take_option(&mut args, "--emit-trimmed"),
        binary: take_flag(&mut args, "--emit-binary"),
    };
    let usage = |msg: String| {
        eprintln!("error: {msg}");
        Ok(ExitCode::from(EXIT_USAGE))
    };
    let drat = match proof_format.as_deref() {
        None | Some("native") => false,
        Some("drat") => true,
        Some(other) => {
            return usage(format!("bad --proof-format {other:?} (native|drat)"))
        }
    };
    let parallel = match take_u64_option(&mut args, "--parallel") {
        Ok(n) => n,
        Err(msg) => return usage(msg),
    };
    let engine = match take_option(&mut args, "--engine") {
        Some(name) => match name.parse::<PropagatorChoice>() {
            Ok(choice) => choice,
            Err(e) => return usage(e),
        },
        None => PropagatorChoice::Watched,
    };
    let budget = match take_budget(&mut args) {
        Ok(b) => b,
        Err(msg) => return usage(msg),
    };
    if !drat && (emit.lrat.is_some() || emit.trimmed.is_some() || emit.binary) {
        return usage(
            "--emit-lrat/--emit-trimmed/--emit-binary require \
             --proof-format drat"
                .into(),
        );
    }
    if stream && !drat {
        return usage("--stream requires --proof-format drat".into());
    }
    if stream && (emit.lrat.is_some() || emit.trimmed.is_some()) {
        return usage(
            "--emit-lrat/--emit-trimmed are not available with --stream \
             (windows are discarded after checking)"
                .into(),
        );
    }
    if !stream
        && (event_log.is_some()
            || memory_budget_mb.is_some()
            || window_kb.is_some()
            || granule_kb.is_some())
    {
        return usage(
            "--memory-budget/--window-kb/--granule-kb/--event-log \
             require --stream"
                .into(),
        );
    }
    if drat && (all || parallel.is_some()) {
        // the backward pass checks only marked steps by construction:
        // nothing to parallelise
        return usage(
            "--proof-format drat is checked backward; \
             --all/--parallel do not apply"
                .into(),
        );
    }
    if drat && !stream && (checkpoint_path.is_some() || resume) {
        // the in-memory backward pass mutates the clause arena in
        // place and is unresumable; only the windowed checker can stop
        // at a boundary
        return usage(
            "--checkpoint/--resume with --proof-format drat require \
             --stream"
                .into(),
        );
    }
    if resume && checkpoint_path.is_none() {
        return usage("--resume requires --checkpoint <path>".into());
    }
    if resume && parallel.is_some() {
        return usage("--resume is sequential; drop --parallel".into());
    }
    let [cnf_path, proof_path] = args.as_slice() else {
        return usage("usage: satverify check <cnf> <proof> [options]".into());
    };
    if stream {
        let mut config = StreamConfig::default();
        if let Some(mb) = memory_budget_mb {
            config.memory_budget = mb.saturating_mul(1024 * 1024);
        }
        if let Some(kb) = window_kb {
            config.window_bytes = kb.saturating_mul(1024);
        }
        if let Some(kb) = granule_kb {
            config.index_granule_bytes = kb.saturating_mul(1024);
        }
        config.checkpoint = checkpoint_path.as_deref().map(Into::into);
        return check_drat_stream(
            cnf_path,
            proof_path,
            budget,
            engine,
            &config,
            resume,
            event_log.as_deref(),
            &obs_opts,
        );
    }
    if drat {
        return check_drat(cnf_path, proof_path, budget, engine, &emit, &obs_opts);
    }
    let malformed = |msg: String| {
        eprintln!("error: {msg}");
        Ok(ExitCode::from(EXIT_MALFORMED))
    };
    let formula = match load_formula(cnf_path) {
        Ok(f) => f,
        Err(msg) => return malformed(msg),
    };
    let proof = match load_proof(proof_path) {
        Ok(p) => p,
        Err(msg) => return malformed(msg),
    };
    let mut report = RunReport::new("check");
    report.instance_path = Some(cnf_path.clone());
    report.num_vars = Some(formula.num_vars());
    report.num_clauses = Some(formula.num_clauses());
    report.proof = Some(ProofStats::of(&proof));

    let harness = Harness::with_budget(budget);
    let mut summary = HarnessSummary::default();
    let mode = if all || parallel.is_some() {
        CheckMode::All
    } else {
        CheckMode::MarkedOnly
    };
    let resume_from = match checkpoint_path.as_deref().filter(|_| resume) {
        Some(path) if Path::new(path).exists() => match Checkpoint::load(Path::new(path)) {
            Ok(cp) => Some(cp),
            Err(e) => return malformed(format!("{path}: {e}")),
        },
        Some(path) => {
            println!("c no checkpoint at {path}; starting fresh");
            None
        }
        None => None,
    };
    summary.resumed = resume_from.is_some();
    let outcome = match (&resume_from, parallel) {
        (Some(cp), _) => match resume_verification_with_engine(
            &formula, &proof, cp, &harness, engine,
        ) {
            Ok(outcome) => outcome,
            // a checkpoint for different inputs is the caller's mistake
            // (wrong file paths), not corrupt data: usage, not malformed
            Err(e @ CheckpointError::Mismatch(_)) => {
                return usage(format!(
                    "cannot resume: {e}; pass the formula and proof the \
                     checkpoint was written for, or delete it"
                ))
            }
            Err(e) => return malformed(format!("cannot resume: {e}")),
        },
        (None, Some(threads)) => {
            let threads = usize::try_from(threads).unwrap_or(usize::MAX).max(1);
            verify_all_parallel_harnessed_with_engine(
                &formula, &proof, threads, &harness, engine,
            )
        }
        (None, None) => {
            verify_harnessed_with_engine(&formula, &proof, mode, &harness, engine)
        }
    };
    match outcome {
        Outcome::Verified(v) => {
            println!("s VERIFIED");
            println!("c {}", v.report);
            println!("c proof: {}", ProofStats::of(&proof));
            summary.outcome = "verified".to_string();
            summary.steps_checked = Some(v.report.num_checked);
            summary.steps_total = Some(proof.len());
            report.result = Some("VERIFIED".to_string());
            report.verify_time = Some(v.report.verify_time);
            report.verification = Some(v.report);
            report.harness = Some(summary);
            obs_opts.emit(report)?;
            Ok(ExitCode::from(EXIT_VERIFIED))
        }
        Outcome::Rejected { step, error } => {
            println!("s NOT VERIFIED");
            println!("c {error}");
            if let Some(step) = step {
                println!("c failing proof clause: step {step}");
            }
            summary.outcome = "rejected".to_string();
            summary.rejected_step = step;
            summary.steps_total = Some(proof.len());
            report.result = Some("NOT VERIFIED".to_string());
            report.harness = Some(summary);
            obs_opts.emit(report)?;
            Ok(ExitCode::from(EXIT_REJECTED))
        }
        Outcome::Exhausted { reason, progress, checkpoint } => {
            println!("s UNKNOWN");
            println!(
                "c budget exhausted ({reason}) after {}/{} checks — no verdict",
                progress.steps_checked, progress.steps_total
            );
            summary.outcome = "exhausted".to_string();
            summary.exhaust_reason = Some(reason.to_string());
            summary.steps_checked = Some(progress.steps_checked);
            summary.steps_total = Some(progress.steps_total);
            if let (Some(path), Some(cp)) = (&checkpoint_path, checkpoint) {
                cp.save(Path::new(path))
                    .map_err(|e| format!("cannot write checkpoint: {e}"))?;
                println!("c checkpoint written to {path}; rerun with --resume");
                summary.checkpoint_path = Some(path.clone());
            }
            report.result = Some("UNKNOWN".to_string());
            report.harness = Some(summary);
            obs_opts.emit(report)?;
            Ok(ExitCode::from(EXIT_EXHAUSTED))
        }
    }
}

/// The `check --proof-format drat` output options: where to write the
/// captured LRAT certificate and the trimmed proof, and whether to use
/// the binary encodings.
struct EmitOptions {
    lrat: Option<String>,
    trimmed: Option<String>,
    binary: bool,
}

/// The DRAT branch of `satverify check`: parse the standard-format
/// proof (text or binary), check it backward with core-first marking,
/// and write the requested LRAT/trimmed-DRAT artifacts on success. The
/// exit-code contract is identical to the native branch.
fn check_drat(
    cnf_path: &str,
    proof_path: &str,
    budget: proofver::Budget,
    engine: PropagatorChoice,
    emit: &EmitOptions,
    obs_opts: &ObsOptions,
) -> Result<ExitCode, String> {
    let malformed = |msg: String| {
        eprintln!("error: {msg}");
        Ok(ExitCode::from(EXIT_MALFORMED))
    };
    let formula = match load_formula(cnf_path) {
        Ok(f) => f,
        Err(msg) => return malformed(msg),
    };
    let bytes = match std::fs::read(proof_path) {
        Ok(b) => b,
        Err(e) => return malformed(format!("cannot open {proof_path}: {e}")),
    };
    let proof = match proofver::parse_drat(&bytes) {
        Ok(p) => p,
        Err(e) => return malformed(format!("{proof_path}: {e}")),
    };
    let mut report = RunReport::new("check");
    report.instance_path = Some(cnf_path.to_string());
    report.num_vars = Some(formula.num_vars());
    report.num_clauses = Some(formula.num_clauses());
    let mut summary = HarnessSummary::default();
    let harness = Harness::with_budget(budget);
    match proofver::verify_drat_backward_harnessed(&formula, &proof, &harness, engine) {
        proofver::DratOutcome::Verified(v) => {
            println!("s VERIFIED");
            println!(
                "c {} of {} additions checked ({} RUP, {} RAT, {} resolvent checks)",
                v.num_checked,
                proof.num_adds(),
                v.stats.num_rup,
                v.stats.num_rat,
                v.stats.num_resolvent_checks
            );
            println!(
                "c core: {} of {} original clauses",
                v.core.len(),
                formula.num_clauses()
            );
            if let Some(path) = &emit.lrat {
                let file = File::create(path)
                    .map_err(|e| format!("cannot create {path}: {e}"))?;
                let mut writer = BufWriter::new(file);
                if emit.binary {
                    proofver::encode_lrat(&mut writer, &v.lrat)
                } else {
                    proofver::write_lrat(&mut writer, &v.lrat)
                }
                .map_err(|e| format!("{path}: {e}"))?;
                println!("c LRAT certificate written to {path}");
            }
            if let Some(path) = &emit.trimmed {
                let trimmed = proofver::trim_drat(&proof, &v);
                let file = File::create(path)
                    .map_err(|e| format!("cannot create {path}: {e}"))?;
                let mut writer = BufWriter::new(file);
                if emit.binary {
                    proofver::encode_drat(&mut writer, &trimmed)
                } else {
                    proofver::write_drat(&mut writer, &trimmed)
                }
                .map_err(|e| format!("{path}: {e}"))?;
                println!(
                    "c trimmed proof written to {path} ({} -> {} steps)",
                    proof.steps().len(),
                    trimmed.steps().len()
                );
            }
            summary.outcome = "verified".to_string();
            summary.steps_checked = Some(v.num_checked);
            summary.steps_total = Some(proof.num_adds());
            report.result = Some("VERIFIED".to_string());
            report.harness = Some(summary);
            obs_opts.emit(report)?;
            Ok(ExitCode::from(EXIT_VERIFIED))
        }
        proofver::DratOutcome::Rejected { step, error } => {
            println!("s NOT VERIFIED");
            println!("c {error}");
            if let Some(step) = step {
                println!("c failing proof addition: step {step}");
            }
            summary.outcome = "rejected".to_string();
            summary.rejected_step = step;
            summary.steps_total = Some(proof.num_adds());
            report.result = Some("NOT VERIFIED".to_string());
            report.harness = Some(summary);
            obs_opts.emit(report)?;
            Ok(ExitCode::from(EXIT_REJECTED))
        }
        proofver::DratOutcome::Exhausted { reason, progress } => {
            println!("s UNKNOWN");
            println!(
                "c budget exhausted ({reason}) after {}/{} checks — no verdict",
                progress.steps_checked, progress.steps_total
            );
            summary.outcome = "exhausted".to_string();
            summary.exhaust_reason = Some(reason.to_string());
            summary.steps_checked = Some(progress.steps_checked);
            summary.steps_total = Some(progress.steps_total);
            report.result = Some("UNKNOWN".to_string());
            report.harness = Some(summary);
            obs_opts.emit(report)?;
            Ok(ExitCode::from(EXIT_EXHAUSTED))
        }
    }
}

/// The `check --stream` branch: windowed backward verification of a
/// binary DRAT proof under a memory budget, with durable window-boundary
/// checkpoints. Exit codes extend the `check` contract: a checkpoint
/// problem (corrupt JSON, fingerprint mismatch) is a usage error (2),
/// any other environmental failure (proof I/O fault, parse error,
/// changed file) is malformed input (3) — never a verdict.
#[allow(clippy::too_many_arguments)]
fn check_drat_stream(
    cnf_path: &str,
    proof_path: &str,
    budget: Budget,
    engine: PropagatorChoice,
    config: &StreamConfig,
    resume: bool,
    event_log: Option<&str>,
    obs_opts: &ObsOptions,
) -> Result<ExitCode, String> {
    let usage = |msg: String| {
        eprintln!("error: {msg}");
        Ok(ExitCode::from(EXIT_USAGE))
    };
    let malformed = |msg: String| {
        eprintln!("error: {msg}");
        Ok(ExitCode::from(EXIT_MALFORMED))
    };
    let formula = match load_formula(cnf_path) {
        Ok(f) => f,
        Err(msg) => return malformed(msg),
    };
    let resume_from = match config.checkpoint.as_deref().filter(|_| resume) {
        Some(path) if path.exists() => match StreamCheckpoint::load(path) {
            Ok(cp) => Some(cp),
            // a checkpoint that cannot be read back — torn by a crash,
            // truncated, hand-edited — must be surfaced, never silently
            // restarted from scratch
            Err(e) => {
                return usage(format!(
                    "cannot resume from {}: {e}; delete the checkpoint to \
                     start fresh",
                    path.display()
                ))
            }
        },
        Some(path) => {
            println!("c no checkpoint at {}; starting fresh", path.display());
            None
        }
        None => None,
    };
    let events = match event_log {
        Some(path) => match obs::EventLog::create(Path::new(path)) {
            Ok(log) => Some(log),
            Err(e) => return malformed(format!("cannot create {path}: {e}")),
        },
        None => None,
    };
    let mut report = RunReport::new("check");
    report.instance_path = Some(cnf_path.to_string());
    report.num_vars = Some(formula.num_vars());
    report.num_clauses = Some(formula.num_clauses());
    let mut summary = HarnessSummary {
        resumed: resume_from.is_some(),
        ..Default::default()
    };
    let harness = Harness::with_budget(budget);
    let outcome = proofver::verify_drat_stream(
        &formula,
        Path::new(proof_path),
        &harness,
        config,
        engine,
        resume_from.as_ref(),
        events.as_ref(),
    );
    match outcome {
        StreamOutcome::Verified(v) => {
            println!("s VERIFIED");
            println!(
                "c {} of {} additions checked in {} windows \
                 ({} shrinks, {} rebuilds)",
                v.num_checked, v.total_adds, v.windows, v.window_shrinks,
                v.arena_rebuilds
            );
            println!(
                "c peak residency {} of {} budget bytes over a {}-byte proof",
                v.peak_residency, config.memory_budget, v.proof_bytes
            );
            println!(
                "c core: {} of {} original clauses",
                v.core.len(),
                formula.num_clauses()
            );
            summary.outcome = "verified".to_string();
            summary.steps_checked = Some(v.num_checked);
            summary.steps_total = Some(v.total_adds as usize);
            report.result = Some("VERIFIED".to_string());
            report.harness = Some(summary);
            obs_opts.emit(report)?;
            Ok(ExitCode::from(EXIT_VERIFIED))
        }
        StreamOutcome::Rejected { step, error } => {
            println!("s NOT VERIFIED");
            println!("c {error}");
            if let Some(step) = step {
                println!("c failing proof addition: step {step}");
            }
            summary.outcome = "rejected".to_string();
            summary.rejected_step = step;
            report.result = Some("NOT VERIFIED".to_string());
            report.harness = Some(summary);
            obs_opts.emit(report)?;
            Ok(ExitCode::from(EXIT_REJECTED))
        }
        StreamOutcome::Exhausted { reason, progress, checkpointed } => {
            println!("s UNKNOWN");
            println!(
                "c budget exhausted ({reason}) after {}/{} checks — no verdict",
                progress.steps_checked, progress.steps_total
            );
            summary.outcome = "exhausted".to_string();
            summary.exhaust_reason = Some(reason.to_string());
            summary.steps_checked = Some(progress.steps_checked);
            summary.steps_total = Some(progress.steps_total);
            if checkpointed {
                if let Some(path) = &config.checkpoint {
                    println!(
                        "c checkpoint at {}; rerun with --resume",
                        path.display()
                    );
                    summary.checkpoint_path =
                        Some(path.display().to_string());
                }
            }
            report.result = Some("UNKNOWN".to_string());
            report.harness = Some(summary);
            obs_opts.emit(report)?;
            Ok(ExitCode::from(EXIT_EXHAUSTED))
        }
        StreamOutcome::Failed(StreamError::Checkpoint(e)) => usage(format!(
            "checkpoint problem: {e}; fix or delete the checkpoint file"
        )),
        StreamOutcome::Failed(e) => malformed(e.to_string()),
    }
}

/// `satverify lrat`: replay an LRAT certificate against a formula with
/// the strict in-repo hint checker. Closes the emit→re-validate loop
/// (`check --proof-format drat --emit-lrat out.lrat` then
/// `lrat <cnf> out.lrat`) without leaving the toolchain.
fn cmd_lrat(args: &[String]) -> Result<ExitCode, String> {
    let [cnf_path, lrat_path] = args else {
        eprintln!("usage: satverify lrat <cnf> <lrat>");
        return Ok(ExitCode::from(EXIT_USAGE));
    };
    let malformed = |msg: String| {
        eprintln!("error: {msg}");
        Ok(ExitCode::from(EXIT_MALFORMED))
    };
    let formula = match load_formula(cnf_path) {
        Ok(f) => f,
        Err(msg) => return malformed(msg),
    };
    let bytes = match std::fs::read(lrat_path) {
        Ok(b) => b,
        Err(e) => return malformed(format!("cannot open {lrat_path}: {e}")),
    };
    let proof = match proofver::parse_lrat(&bytes) {
        Ok(p) => p,
        Err(e) => return malformed(format!("{lrat_path}: {e}")),
    };
    match proofver::check_lrat(&formula, &proof) {
        Ok(stats) => {
            println!("s VERIFIED");
            println!(
                "c {} addition lines ({} RAT), {} deletion lines",
                stats.num_add_lines, stats.num_rat_lines, stats.num_delete_lines
            );
            Ok(ExitCode::from(EXIT_VERIFIED))
        }
        Err(e) => {
            println!("s NOT VERIFIED");
            println!("c {e}");
            Ok(ExitCode::from(EXIT_REJECTED))
        }
    }
}

/// Exit code for `client check` when the daemon refused admission
/// (queue full or draining): the job was never run, so none of the
/// verdict codes apply, and it is not the caller's usage error either.
const EXIT_UNAVAILABLE: u8 = 5;

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let listen =
        take_option(&mut args, "--listen").unwrap_or_else(|| "tcp:127.0.0.1:0".into());
    let workers = take_u64_option(&mut args, "--workers")?;
    let queue_capacity = take_u64_option(&mut args, "--queue-capacity")?;
    let drain_on_stdin = take_flag(&mut args, "--drain-on-stdin-close");
    let event_log = take_option(&mut args, "--event-log");
    let cache_mb = take_u64_option(&mut args, "--cache-mb")?;
    let no_cache = take_flag(&mut args, "--no-cache");
    let io = take_option(&mut args, "--io");
    let budget = take_budget(&mut args)?;
    if !args.is_empty() {
        return Err(format!("unexpected arguments {args:?}; see `satverify help`"));
    }
    let endpoint = Endpoint::parse(&listen)?;
    let mut config = ServerConfig::default().default_budget(budget);
    if let Some(n) = workers {
        config = config.workers(usize::try_from(n).unwrap_or(usize::MAX));
    }
    if let Some(n) = queue_capacity {
        config = config.queue_capacity(usize::try_from(n).unwrap_or(usize::MAX));
    }
    if no_cache {
        if cache_mb.is_some() {
            return Err("--no-cache conflicts with --cache-mb".into());
        }
        config = config.cache_enabled(false);
    } else {
        // the daemon caches by default; the library default is off so
        // embedded servers opt in explicitly
        let bytes = cache_mb
            .map(|mb| mb.saturating_mul(1024 * 1024))
            .unwrap_or(DEFAULT_CACHE_BYTES);
        config = config.cache_bytes(bytes);
    }
    match io.as_deref() {
        None => {}
        Some("reactor") => config = config.io(IoModel::Reactor),
        Some("threads") => config = config.io(IoModel::Threads),
        Some(other) => {
            return Err(format!("bad --io {other:?} (reactor|threads)"))
        }
    }
    if let Some(path) = &event_log {
        let log = obs::EventLog::create(Path::new(path))
            .map_err(|e| format!("cannot create event log {path}: {e}"))?;
        config = config.event_log(std::sync::Arc::new(log));
    }
    let handle = Server::bind(&endpoint, config)
        .map_err(|e| format!("cannot bind {endpoint}: {e}"))?;
    // stdout may be a pipe whose reader hangs up after the banner (or
    // at any point); a serving daemon must never die on EPIPE
    use std::io::Write as _;
    let mut stdout = std::io::stdout();
    let _ = writeln!(stdout, "c satverifyd listening on {}", handle.local_endpoint());
    let _ = writeln!(
        stdout,
        "c drain with: satverify client {} shutdown",
        handle.local_endpoint()
    );
    let _ = stdout.flush();
    if drain_on_stdin {
        let trigger = handle.drain_trigger();
        std::thread::spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                match std::io::stdin().read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) if line.trim() == "shutdown" => break,
                    Ok(_) => {}
                }
            }
            trigger.shutdown();
        });
    }
    handle.join();
    // stdout may be a pipe whose reader only wanted the banner; a
    // drained daemon must still exit 0
    let _ = writeln!(std::io::stdout(), "c drained cleanly");
    Ok(ExitCode::SUCCESS)
}

/// `satverify route`: the sharding front tier. Same protocol as
/// `serve`, but jobs are forwarded to a static backend pool by formula
/// fingerprint instead of verified locally.
fn cmd_route(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let listen =
        take_option(&mut args, "--listen").unwrap_or_else(|| "tcp:127.0.0.1:0".into());
    let mut backends = Vec::new();
    while let Some(backend) = take_option(&mut args, "--backend") {
        backends.push(Endpoint::parse(&backend)?);
    }
    let health_interval_ms = take_u64_option(&mut args, "--health-interval-ms")?;
    let event_log = take_option(&mut args, "--event-log");
    if !args.is_empty() {
        return Err(format!("unexpected arguments {args:?}; see `satverify help`"));
    }
    if backends.is_empty() {
        return Err("route needs at least one --backend <ep>".into());
    }
    let endpoint = Endpoint::parse(&listen)?;
    let mut config = RouterConfig::new(backends.clone());
    if let Some(ms) = health_interval_ms {
        config = config.health_interval(Duration::from_millis(ms));
    }
    if let Some(path) = &event_log {
        let log = obs::EventLog::create(Path::new(path))
            .map_err(|e| format!("cannot create event log {path}: {e}"))?;
        config = config.event_log(std::sync::Arc::new(log));
    }
    let handle = Router::bind(&endpoint, config)
        .map_err(|e| format!("cannot bind {endpoint}: {e}"))?;
    // same EPIPE discipline as `serve`: the banner's reader may hang up
    use std::io::Write as _;
    let mut stdout = std::io::stdout();
    let _ = writeln!(stdout, "c satverify-route listening on {}", handle.local_endpoint());
    for (i, backend) in backends.iter().enumerate() {
        let _ = writeln!(stdout, "c   backend {i}: {backend}");
    }
    let _ = writeln!(
        stdout,
        "c drain with: satverify client {} shutdown",
        handle.local_endpoint()
    );
    let _ = stdout.flush();
    handle.join();
    let _ = writeln!(std::io::stdout(), "c drained cleanly");
    Ok(ExitCode::SUCCESS)
}

/// Builds the wire [`BudgetSpec`] from the same budget flags `check`
/// takes locally.
fn take_budget_spec(args: &mut Vec<String>) -> Result<BudgetSpec, String> {
    Ok(BudgetSpec {
        max_propagations: take_u64_option(args, "--max-propagations")?,
        max_clause_visits: take_u64_option(args, "--max-clause-visits")?,
        max_memory_bytes: take_u64_option(args, "--max-memory-mb")?
            .map(|mb| mb.saturating_mul(1024 * 1024)),
        timeout_ms: take_u64_option(args, "--timeout-ms")?,
    })
}

fn cmd_client(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let usage = |msg: &str| {
        eprintln!("error: {msg}");
        eprintln!("usage: satverify client <endpoint> ping|stats|metrics|shutdown");
        eprintln!(
            "       satverify client <endpoint> check <cnf> <proof> \
             [--all] [--by-path] [--proof-format <native|drat>] [--stream] \
             [--no-retry] [budget flags]"
        );
        eprintln!(
            "       satverify client <endpoint> batch <jobs.jsonl> [--no-retry]"
        );
        Ok(ExitCode::from(EXIT_USAGE))
    };
    if args.len() < 2 {
        return usage("missing endpoint or action");
    }
    let no_retry = take_flag(&mut args, "--no-retry");
    let endpoint = Endpoint::parse(&args.remove(0))?;
    let action = args.remove(0);
    let policy = if no_retry {
        RetryPolicy::no_retry()
    } else {
        RetryPolicy::default()
    };
    let mut client = match Client::connect_with_retry(&endpoint, &policy) {
        Ok(client) => client,
        // an unreachable daemon is the same operational condition as a
        // draining one: the job never ran, nothing about its inputs is
        // known to be wrong
        Err(e) => {
            eprintln!("error: cannot connect to {endpoint}: {e}");
            return Ok(ExitCode::from(EXIT_UNAVAILABLE));
        }
    };
    let roundtrip = |client: &mut Client, request: &WireRequest| {
        client.request(request).map_err(|e| format!("{endpoint}: {e}"))
    };
    match action.as_str() {
        "ping" => match roundtrip(&mut client, &WireRequest::Ping)? {
            WireResponse::Pong => {
                println!("c pong");
                Ok(ExitCode::SUCCESS)
            }
            other => Err(format!("unexpected response {other:?}")),
        },
        "shutdown" => match roundtrip(&mut client, &WireRequest::Shutdown)? {
            WireResponse::ShuttingDown => {
                println!("c daemon draining");
                Ok(ExitCode::SUCCESS)
            }
            other => Err(format!("unexpected response {other:?}")),
        },
        "stats" => match roundtrip(&mut client, &WireRequest::Stats)? {
            WireResponse::Stats(stats) => {
                println!("c counters:");
                for (name, value) in &stats.counters {
                    println!("c   {name:<20} {value}");
                }
                println!("c queue_depth          {}", stats.queue_depth);
                println!("c in_flight            {}", stats.in_flight);
                if !stats.latency_us.is_empty() {
                    println!(
                        "c latency_us (count, p50, p90, p99, min, max):"
                    );
                    for (name, s) in &stats.latency_us {
                        println!(
                            "c   {name:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                            s.count, s.p50, s.p90, s.p99, s.min, s.max
                        );
                    }
                }
                println!("c latency_ms buckets (le, count):");
                for (le, count) in &stats.latency_buckets {
                    println!("c   {le:>12} {count}");
                }
                Ok(ExitCode::SUCCESS)
            }
            other => Err(format!("unexpected response {other:?}")),
        },
        "metrics" => match roundtrip(&mut client, &WireRequest::Metrics)? {
            WireResponse::Metrics { text } => {
                print!("{text}");
                Ok(ExitCode::SUCCESS)
            }
            other => Err(format!("unexpected response {other:?}")),
        },
        "check" => {
            let all = take_flag(&mut args, "--all");
            let by_path = take_flag(&mut args, "--by-path");
            let stream = take_flag(&mut args, "--stream");
            let proof_format = take_option(&mut args, "--proof-format");
            match proof_format.as_deref() {
                None | Some("native") | Some("drat") => {}
                Some(other) => {
                    return usage(&format!(
                        "bad --proof-format {other:?} (native|drat)"
                    ))
                }
            }
            if proof_format.as_deref() == Some("drat") && all {
                return usage("drat jobs are checked backward; drop --all");
            }
            if stream && proof_format.as_deref() != Some("drat") {
                return usage("--stream requires --proof-format drat");
            }
            if stream && !by_path {
                return usage(
                    "--stream requires --by-path (the daemon streams a \
                     server-local binary DRAT file)",
                );
            }
            let budget = take_budget_spec(&mut args)?;
            let [cnf_path, proof_path] = args.as_slice() else {
                return usage("client check needs <cnf> <proof>");
            };
            let mut request = VerifyRequest {
                mode: all.then(|| "all".to_string()),
                proof_format,
                stream,
                budget,
                ..VerifyRequest::default()
            };
            if by_path {
                request.formula_path = Some(cnf_path.clone());
                request.proof_path = Some(proof_path.clone());
            } else {
                // ship file contents so the daemon works across hosts
                request.formula = Some(
                    std::fs::read_to_string(cnf_path)
                        .map_err(|e| format!("cannot read {cnf_path}: {e}"))?,
                );
                request.proof = Some(
                    std::fs::read_to_string(proof_path)
                        .map_err(|e| format!("cannot read {proof_path}: {e}"))?,
                );
            }
            let response =
                roundtrip(&mut client, &WireRequest::Verify(request))?;
            report_remote_check(&response)
        }
        "batch" => {
            let [path] = args.as_slice() else {
                return usage("client batch needs <jobs.jsonl>");
            };
            let jobs = match load_batch(path) {
                Ok(jobs) => jobs,
                Err(msg) => return usage(&msg),
            };
            if jobs.is_empty() {
                return usage(&format!("{path}: no jobs"));
            }
            run_batch(&mut client, &endpoint, jobs)
        }
        other => usage(&format!("unknown client action {other:?}")),
    }
}

/// Parses a JSONL batch file: one verify job per non-empty line. Jobs
/// without an `id` get `job-<line>` so every response can be matched
/// back to its submission.
fn load_batch(path: &str) -> Result<Vec<VerifyRequest>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut jobs = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut job = VerifyRequest::from_json_line(line)
            .map_err(|e| format!("{path}:{}: {e}", index + 1))?;
        if job.id.is_none() {
            job.id = Some(format!("job-{}", index + 1));
        }
        jobs.push(job);
    }
    Ok(jobs)
}

/// Submits the whole batch in one pipelined round trip, collects the
/// per-job responses (which arrive in completion order), and prints one
/// line per job in submission order. The exit code is the worst job's,
/// by operational severity: unavailable > malformed > rejected >
/// exhausted > verified.
fn run_batch(
    client: &mut Client,
    endpoint: &Endpoint,
    jobs: Vec<VerifyRequest>,
) -> Result<ExitCode, String> {
    use std::collections::HashMap;
    let ids: Vec<String> =
        jobs.iter().map(|j| j.id.clone().expect("assigned above")).collect();
    client
        .send(&WireRequest::Batch(jobs))
        .map_err(|e| format!("{endpoint}: {e}"))?;
    // every submission gets exactly one terminal disposition; duplicate
    // ids are legal (and interesting — they exercise the verdict
    // cache), so bucket responses per id and drain in submission order
    let mut by_id: HashMap<String, Vec<WireResponse>> = HashMap::new();
    for _ in 0..ids.len() {
        let response = client.recv().map_err(|e| format!("{endpoint}: {e}"))?;
        let id = match &response {
            WireResponse::Result(r) => r.id.clone(),
            WireResponse::Error { id, .. } => id.clone(),
            other => return Err(format!("unexpected response {other:?}")),
        };
        let Some(id) = id else {
            return Err(format!("response without an id: {response:?}"));
        };
        by_id.entry(id).or_default().push(response);
    }
    let mut worst = ExitCode::SUCCESS;
    let mut worst_rank = 0;
    for id in &ids {
        let response = by_id
            .get_mut(id)
            .and_then(|bucket| (!bucket.is_empty()).then(|| bucket.remove(0)))
            .ok_or_else(|| format!("no response for job {id:?}"))?;
        let (line, code, rank) = batch_line(&response);
        println!("{id}: {line}");
        if rank > worst_rank {
            worst_rank = rank;
            worst = code;
        }
    }
    Ok(worst)
}

/// One result line for `client batch`, plus the job's exit code and its
/// severity rank for worst-of aggregation.
fn batch_line(response: &WireResponse) -> (String, ExitCode, u8) {
    match response {
        WireResponse::Result(r) => match r.outcome.as_str() {
            "verified" => {
                let checked = r.steps_checked.unwrap_or(0);
                (
                    format!("s VERIFIED ({checked} clauses checked)"),
                    ExitCode::from(EXIT_VERIFIED),
                    0,
                )
            }
            "rejected" => {
                let detail = r.detail.as_deref().unwrap_or("proof rejected");
                (
                    format!("s NOT VERIFIED ({detail})"),
                    ExitCode::from(EXIT_REJECTED),
                    2,
                )
            }
            "exhausted" => {
                let reason = r.exhaust_reason.as_deref().unwrap_or("budget");
                (
                    format!("s UNKNOWN (budget exhausted: {reason})"),
                    ExitCode::from(EXIT_EXHAUSTED),
                    1,
                )
            }
            other => (
                format!("unknown outcome {other:?}"),
                ExitCode::from(EXIT_MALFORMED),
                3,
            ),
        },
        WireResponse::Error { code, message, .. } => match code {
            WireError::Overloaded | WireError::Draining => (
                format!("error: {message}"),
                ExitCode::from(EXIT_UNAVAILABLE),
                4,
            ),
            WireError::InvalidInput => (
                format!("error: {message}"),
                ExitCode::from(EXIT_MALFORMED),
                3,
            ),
            WireError::BadRequest | WireError::Internal => (
                format!("error: {message}"),
                ExitCode::from(EXIT_MALFORMED),
                3,
            ),
        },
        other => (
            format!("unexpected response {other:?}"),
            ExitCode::from(EXIT_MALFORMED),
            3,
        ),
    }
}

/// Prints a remote `check`'s response in the local `check` style and
/// maps it onto the exit-code contract.
fn report_remote_check(response: &WireResponse) -> Result<ExitCode, String> {
    match response {
        WireResponse::Result(result) => {
            let checked = result.steps_checked.unwrap_or(0);
            let total = result.steps_total.unwrap_or(0);
            match result.outcome.as_str() {
                "verified" => {
                    println!("s VERIFIED");
                    println!("c {checked} clauses checked");
                    Ok(ExitCode::from(EXIT_VERIFIED))
                }
                "rejected" => {
                    println!("s NOT VERIFIED");
                    if let Some(detail) = &result.detail {
                        println!("c {detail}");
                    }
                    if let Some(step) = result.rejected_step {
                        println!("c failing proof clause: step {step}");
                    }
                    Ok(ExitCode::from(EXIT_REJECTED))
                }
                "exhausted" => {
                    println!("s UNKNOWN");
                    let reason = result.exhaust_reason.as_deref().unwrap_or("budget");
                    println!(
                        "c budget exhausted ({reason}) after {checked}/{total} \
                         checks — no verdict"
                    );
                    Ok(ExitCode::from(EXIT_EXHAUSTED))
                }
                other => Err(format!("unknown outcome {other:?}")),
            }
        }
        WireResponse::Error { code, message, .. } => {
            eprintln!("error: daemon: {message}");
            match code {
                WireError::Overloaded | WireError::Draining => {
                    Ok(ExitCode::from(EXIT_UNAVAILABLE))
                }
                WireError::InvalidInput => Ok(ExitCode::from(EXIT_MALFORMED)),
                WireError::BadRequest => Ok(ExitCode::from(EXIT_USAGE)),
                WireError::Internal => Err(message.clone()),
            }
        }
        other => Err(format!("unexpected response {other:?}")),
    }
}

fn cmd_drat(args: &[String]) -> Result<ExitCode, String> {
    let [cnf_path, proof_path] = args else {
        return Err("usage: satverify drat <cnf> <proof>".into());
    };
    let formula = load_formula(cnf_path)?;
    let proof = load_proof(proof_path)?;
    match proofver::verify_drat(&formula, &proof) {
        Ok(stats) => {
            println!("s VERIFIED");
            println!(
                "c {} RUP steps, {} RAT steps ({} resolvent checks)",
                stats.num_rup, stats.num_rat, stats.num_resolvent_checks
            );
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            println!("s NOT VERIFIED");
            println!("c {e}");
            Ok(ExitCode::from(1))
        }
    }
}

fn cmd_core(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let minimize = take_flag(&mut args, "--minimize");
    let mus = take_flag(&mut args, "--mus");
    let out = take_option(&mut args, "--out");
    let [path] = args.as_slice() else {
        return Err("usage: satverify core <cnf> [--minimize|--mus] [--out <file>]".into());
    };
    let formula = load_formula(path)?;
    let (indices, core_formula) = if mus {
        let core = minimal_core_of_verified(&formula, SolverConfig::default())
            .map_err(|e| e.to_string())?;
        println!("c minimal core after {} incremental queries", core.num_queries);
        let core_formula = core.to_formula(&formula);
        (core.indices, core_formula)
    } else if minimize {
        let core = minimize_core(&formula, SolverConfig::default(), 16)
            .map_err(|e| e.to_string())?;
        println!("c core trajectory: {:?}", core.trajectory);
        (core.indices.clone(), core.formula)
    } else {
        match solve_and_verify(&formula, SolverConfig::default())
            .map_err(|e| e.to_string())?
        {
            PipelineOutcome::Sat(_) => {
                println!("s SATISFIABLE");
                return Ok(ExitCode::from(10));
            }
            PipelineOutcome::Unsat(run) => {
                let core = run.verification.core;
                let core_formula = core.to_formula(&formula);
                (core.indices().to_vec(), core_formula)
            }
        }
    };
    println!(
        "c core: {} of {} clauses",
        indices.len(),
        formula.num_clauses()
    );
    println!("c indices: {indices:?}");
    if let Some(out) = out {
        let file = File::create(&out).map_err(|e| format!("cannot create {out}: {e}"))?;
        write_dimacs(BufWriter::new(file), &core_formula)
            .map_err(|e| format!("{out}: {e}"))?;
        println!("c core written to {out}");
    }
    Ok(ExitCode::from(20))
}

fn cmd_trim(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let binary = take_flag(&mut args, "--binary");
    let [cnf_path, proof_in, proof_out] = args.as_slice() else {
        return Err("usage: satverify trim <cnf> <proof-in> <proof-out> [--binary]".into());
    };
    let formula = load_formula(cnf_path)?;
    let proof = load_proof(proof_in)?;
    let (v, trimmed) =
        proofver::verify_and_trim(&formula, &proof).map_err(|e| e.to_string())?;
    println!(
        "c trimmed {} -> {} clauses ({} checked)",
        proof.len(),
        trimmed.len(),
        v.report.num_checked
    );
    write_proof_file(&trimmed, proof_out, binary)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_aig(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let output_index = take_option(&mut args, "--output")
        .map(|v| v.parse::<usize>().map_err(|_| format!("bad --output {v:?}")))
        .transpose()?
        .unwrap_or(0);
    let [path] = args.as_slice() else {
        return Err("usage: satverify aig <aag-file> [--output <i>]".into());
    };
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let parsed = satverify::circuit::parse_aiger(BufReader::new(file))
        .map_err(|e| format!("{path}: {e}"))?;
    let Some(&output) = parsed.outputs.get(output_index) else {
        return Err(format!(
            "output index {output_index} out of range (circuit has {})",
            parsed.outputs.len()
        ));
    };
    if !parsed.latches.is_empty() {
        eprintln!(
            "c note: {} latches treated as free inputs (combinational view)",
            parsed.latches.len()
        );
    }
    let mut enc = parsed.aig.encode();
    enc.assert_edge(output, true);
    let formula = enc.into_formula();
    println!(
        "c {} inputs, {} ands, {} clauses",
        parsed.aig.num_inputs(),
        parsed.aig.num_ands(),
        formula.num_clauses()
    );
    match solve_and_verify(&formula, SolverConfig::default()).map_err(|e| e.to_string())? {
        PipelineOutcome::Sat(_) => {
            println!("s SATISFIABLE");
            println!("c output {output_index} can be 1");
            Ok(ExitCode::from(10))
        }
        PipelineOutcome::Unsat(run) => {
            println!("s UNSATISFIABLE");
            println!("c output {output_index} is constant 0 (verified: {})",
                run.verification.report);
            Ok(ExitCode::from(20))
        }
    }
}

fn cmd_gen(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let out = take_option(&mut args, "--out");
    let Some((family, params)) = args.split_first() else {
        return Err("usage: satverify gen <family> <args..> [--out <file>]".into());
    };
    let p = |i: usize| -> Result<usize, String> {
        params
            .get(i)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("{family}: missing/bad argument {i}"))
    };
    if family == "stream-chain" {
        // the streaming-checker workload: a tiny formula with a proof
        // that grows linearly in <links> (~14 bytes each), written as
        // <prefix>.cnf + <prefix>.drat (binary DRAT)
        let links = p(0)?;
        let Some(prefix) = out else {
            return Err(
                "stream-chain: --out <prefix> is required (writes \
                 <prefix>.cnf and <prefix>.drat)"
                    .into(),
            );
        };
        let (formula, proof) = proofver::chain_workload(links);
        let cnf_path = format!("{prefix}.cnf");
        let file = File::create(&cnf_path)
            .map_err(|e| format!("cannot create {cnf_path}: {e}"))?;
        write_dimacs(BufWriter::new(file), &formula)
            .map_err(|e| format!("{cnf_path}: {e}"))?;
        let drat_path = format!("{prefix}.drat");
        let bytes = proofver::encode_drat_to_vec(&proof);
        std::fs::write(&drat_path, &bytes)
            .map_err(|e| format!("{drat_path}: {e}"))?;
        eprintln!(
            "c wrote {} clauses to {cnf_path} and a {}-byte binary DRAT \
             proof ({} steps) to {drat_path}",
            formula.num_clauses(),
            bytes.len(),
            proof.steps().len()
        );
        return Ok(ExitCode::SUCCESS);
    }
    let formula = match family.as_str() {
        "php" => cnfgen::pigeonhole(p(0)?),
        "tseitin" => cnfgen::tseitin_grid(p(0)?, p(1)?),
        "chess" => cnfgen::mutilated_chessboard(p(0)?),
        "pebbling" => cnfgen::pebbling_pyramid(p(0)?),
        "rand3sat" => cnfgen::random_ksat(3, p(0)?, p(1)?, p(2)? as u64),
        "eqv-adder" => cnfgen::eqv_adder(p(0)?),
        "eqv-shifter" => cnfgen::eqv_shifter(p(0)?, p(1)?),
        "pipe-cpu" => cnfgen::pipe_cpu(p(0)?),
        "bmc-counter" => cnfgen::bmc_counter(p(0)?, p(1)?),
        "bmc-lfsr" => cnfgen::bmc_lfsr(p(0)?, p(1)?),
        other => return Err(format!("unknown family {other:?}")),
    };
    match out {
        Some(out) => {
            let file =
                File::create(&out).map_err(|e| format!("cannot create {out}: {e}"))?;
            write_dimacs(BufWriter::new(file), &formula)
                .map_err(|e| format!("{out}: {e}"))?;
            eprintln!(
                "c wrote {} vars, {} clauses to {out}",
                formula.num_vars(),
                formula.num_clauses()
            );
        }
        None => {
            let stdout = std::io::stdout();
            write_dimacs(stdout.lock(), &formula).map_err(|e| e.to_string())?;
        }
    }
    Ok(ExitCode::SUCCESS)
}
