//! SAT sweeping: proving internal equivalences of a circuit with
//! incremental SAT.
//!
//! The workhorse of industrial combinational equivalence checking [4, 8]:
//! random simulation partitions AIG nodes into candidate equivalence
//! classes (equal or complementary signatures), and an *incremental* SAT
//! solver — one solver instance, one query per candidate via assumptions
//! — proves or refutes each candidate. Counterexamples from refuted
//! candidates are fed back into the signatures, refining the remaining
//! classes.
//!
//! Every *proved* equivalence is an UNSAT-under-assumptions answer, and
//! is therefore checkable with `proofver::verify_implication` like any
//! other claim in this workspace.

use cdcl::{AssumptionResult, Solver, SolverConfig};
use circuit::{Aig, AigEdge};
use cnf::Lit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pipeline::PipelineError;

/// A proven equivalence between two AIG edges (`left ≡ right`, with
/// complement already folded into the edges).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProvedEquivalence {
    /// The class representative (lower node index).
    pub left: AigEdge,
    /// The merged node.
    pub right: AigEdge,
}

/// The outcome of a [`sweep`] run.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Equivalences proved by SAT (left is always the class
    /// representative with the smaller node index).
    pub proved: Vec<ProvedEquivalence>,
    /// Candidate pairs refuted by SAT (the counterexample refined the
    /// remaining signatures).
    pub num_refuted: usize,
    /// Incremental SAT queries made.
    pub num_queries: usize,
    /// Simulation patterns used, including counterexample refinements.
    pub num_patterns: usize,
}

/// Sweeps `aig`: finds node pairs with identical (or complementary)
/// behaviour and proves each with incremental SAT. `patterns` random
/// 64-bit pattern words seed the signatures (so `64 * patterns`
/// simulation vectors), generated deterministically from `seed`.
///
/// # Errors
///
/// Returns [`PipelineError::BudgetExhausted`] if a SAT query exceeds
/// `config.max_conflicts`, or [`PipelineError::BadModel`] if the solver
/// returns a model that does not refute the candidate (a solver bug).
pub fn sweep(
    aig: &Aig,
    seed: u64,
    patterns: usize,
    config: SolverConfig,
) -> Result<SweepResult, PipelineError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let patterns = patterns.max(1);

    // signatures[node] = simulation bits accumulated so far
    let mut signatures: Vec<Vec<u64>> = vec![Vec::new(); aig.num_nodes()];
    let mut num_patterns = 0usize;
    let add_pattern_word = |signatures: &mut Vec<Vec<u64>>, inputs: &[u64]| {
        let values = aig.evaluate64(inputs);
        for (sig, v) in signatures.iter_mut().zip(&values) {
            sig.push(*v);
        }
    };
    for _ in 0..patterns {
        let inputs: Vec<u64> = (0..aig.num_inputs()).map(|_| rng.gen()).collect();
        add_pattern_word(&mut signatures, &inputs);
        num_patterns += 64;
    }

    // one shared incremental solver over the AIG encoding
    let encoding = aig.encode();
    let mut solver = Solver::new(encoding.formula(), config);
    let lit_of = |e: AigEdge| -> Lit { encoding.lit(e) };

    let mut proved = Vec::new();
    let mut num_refuted = 0usize;
    let mut num_queries = 0usize;

    // Union-find over nodes so each node is compared against its class
    // representative only.
    let mut parent: Vec<usize> = (0..aig.num_nodes()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    // Iterate nodes in topological order; candidate = earliest previous
    // node with a matching (possibly complemented) signature.
    use std::collections::HashMap;
    loop {
        let mut changed = false;
        let mut by_signature: HashMap<Vec<u64>, usize> = HashMap::new();
        let edges: Vec<AigEdge> = aig.edges().collect();
        for &edge in &edges {
            let node = edge.node();
            if find(&mut parent, node) != node {
                continue; // already merged
            }
            let sig = signatures[node].clone();
            let complemented: Vec<u64> = sig.iter().map(|w| !w).collect();
            let canonical = if sig <= complemented { sig } else { complemented };
            let Some(&rep) = by_signature.get(&canonical) else {
                by_signature.insert(canonical, node);
                continue;
            };
            if rep == node {
                continue;
            }
            // candidate: node ≡ rep (possibly complemented); the phase
            // follows from the raw signatures
            let same_phase = signatures[rep] == signatures[node];
            let left = aig.node_edge(rep);
            let right = if same_phase {
                aig.node_edge(node)
            } else {
                aig.node_edge(node).complement()
            };

            // prove left ≡ right: both (left ∧ ¬right) and (¬left ∧ right)
            // must be unsatisfiable
            let mut refuting_model: Option<Vec<u64>> = None;
            for (vl, vr) in [(true, false), (false, true)] {
                let assumptions = [
                    if vl { lit_of(left) } else { !lit_of(left) },
                    if vr { lit_of(right) } else { !lit_of(right) },
                ];
                num_queries += 1;
                match solver.solve_with_assumptions(&assumptions) {
                    AssumptionResult::UnsatUnderAssumptions { .. }
                    | AssumptionResult::Unsat(_) => {}
                    AssumptionResult::Sat(model) => {
                        // counterexample: feed its input pattern back
                        // into the signatures to split this class
                        refuting_model = Some(input_pattern(aig, &encoding, &model));
                        break;
                    }
                    AssumptionResult::Unknown => {
                        return Err(PipelineError::BudgetExhausted)
                    }
                }
            }
            match refuting_model {
                None => {
                    proved.push(ProvedEquivalence { left, right });
                    let root = find(&mut parent, rep);
                    parent[node] = root;
                }
                Some(inputs) => {
                    num_refuted += 1;
                    add_pattern_word(&mut signatures, &inputs);
                    num_patterns += 64;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    Ok(SweepResult { proved, num_refuted, num_queries, num_patterns })
}

/// Builds a 64-wide input word replicating a single counterexample model
/// in every lane — one genuinely new pattern per refutation is enough to
/// split the refuted class permanently.
fn input_pattern(
    aig: &Aig,
    encoding: &circuit::AigEncoding,
    model: &cnf::Assignment,
) -> Vec<u64> {
    aig.input_edges()
        .iter()
        .map(|&e| {
            if model.is_true(encoding.lit(e)) {
                u64::MAX // the counterexample value in every lane
            } else {
                0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::netlist_to_aig;

    #[test]
    fn sweep_finds_functionally_equal_nodes() {
        // build x∧y twice through different structure
        let mut n = circuit::Netlist::new();
        let x = n.input();
        let y = n.input();
        let direct = n.and2(x, y);
        // ¬(¬x ∨ ¬y)
        let nx = n.not(x);
        let ny = n.not(y);
        let o = n.or2(nx, ny);
        let rebuilt = n.not(o);
        n.set_output("a", direct);
        n.set_output("b", rebuilt);
        let (aig, map) = netlist_to_aig(&n);

        let result = sweep(&aig, 7, 2, SolverConfig::default()).expect("sweep");
        // netlist De Morgan forms strash to the same node already, so
        // either zero candidates (already merged) or a proved pair
        let a = map[direct.index()];
        let b = map[rebuilt.index()];
        assert_eq!(a, b, "strashing already merges De Morgan forms");
        assert_eq!(result.num_refuted, 0);
    }

    #[test]
    fn sweep_proves_xor_decompositions_equal() {
        // a ⊕ b via the standard decomposition vs as the complement of
        // XNOR: different AND nodes, functionally identical
        let mut aig = circuit::Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x1 = aig.xor2(a, b);
        let both = aig.and2(a, b);
        let neither = aig.and2(a.complement(), b.complement());
        let x2 = aig.or2(both, neither).complement(); // ¬(a XNOR b)
        assert_ne!(x1.node(), x2.node(), "different structure");
        aig.set_output("x1", x1);
        aig.set_output("x2", x2);

        let result = sweep(&aig, 3, 2, SolverConfig::default()).expect("sweep");
        assert!(
            result
                .proved
                .iter()
                .any(|p| p.left.node() == x1.node() || p.right.node() == x1.node()),
            "x1/x2 equivalence must be proved: {result:?}"
        );
        assert!(result.num_queries >= 2);
    }

    #[test]
    fn sweep_refutes_near_equivalences() {
        // AND vs OR agree on 3 of 4 input combinations — random patterns
        // will likely group them only to be refuted, or split them right
        // away; either way nothing false is proved
        let mut aig = circuit::Aig::new();
        let a = aig.input();
        let b = aig.input();
        let g_and = aig.and2(a, b);
        let g_or = aig.or2(a, b);
        aig.set_output("and", g_and);
        aig.set_output("or", g_or);

        let result = sweep(&aig, 11, 1, SolverConfig::default()).expect("sweep");
        for p in &result.proved {
            assert_ne!(
                (p.left.node(), p.right.node()),
                (g_and.node(), g_or.node()),
                "AND and OR must never be merged"
            );
        }
    }

    #[test]
    fn sweep_handles_interleaved_input_creation() {
        // an input declared *after* an AND node: counterexample
        // extraction must map model values to the right input lanes
        let mut aig = circuit::Aig::new();
        let a = aig.input();
        let b = aig.input();
        let g_and = aig.and2(a, b);
        let c = aig.input(); // node index above the AND
        let near = aig.and2(g_and, c.complement());
        let far = aig.and2(g_and, c); // differs from `near` only on c
        aig.set_output("near", near);
        aig.set_output("far", far);
        let result = sweep(&aig, 99, 1, SolverConfig::default()).expect("sweep");
        for p in &result.proved {
            for bits in 0u32..8 {
                let inputs: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
                let v = aig.evaluate(&inputs);
                assert_eq!(v.edge(p.left), v.edge(p.right), "false merge {p:?}");
            }
        }
    }

    #[test]
    fn sweep_on_adder_miter_collapses_duplicate_logic() {
        use circuit::{build_miter, carry_select_adder, ripple_carry_adder};
        let width = 4;
        let (netlist, _diff) = build_miter(
            2 * width,
            |n, io| {
                let (s, c) = ripple_carry_adder(n, &io[..width], &io[width..]);
                let mut out = s;
                out.push(c);
                out
            },
            |n, io| {
                let (s, c) = carry_select_adder(n, &io[..width], &io[width..], 2);
                let mut out = s;
                out.push(c);
                out
            },
        );
        let (aig, _) = netlist_to_aig(&netlist);
        let result = sweep(&aig, 5, 2, SolverConfig::default()).expect("sweep");
        // the two adders compute the same sums: at least `width` proved
        // equivalences (one per output bit) must be found
        assert!(
            result.proved.len() >= width,
            "expected ≥{width} proved pairs, got {}",
            result.proved.len()
        );
        // spot-check each proved pair with the brute-force evaluator
        for p in &result.proved {
            for bits in 0u32..(1 << (2 * width)) {
                let inputs: Vec<bool> =
                    (0..2 * width).map(|i| bits >> i & 1 == 1).collect();
                let v = aig.evaluate(&inputs);
                assert_eq!(
                    v.edge(p.left),
                    v.edge(p.right),
                    "false merge {p:?} at {bits:b}"
                );
            }
        }
    }
}
