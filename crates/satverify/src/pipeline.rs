//! The end-to-end pipeline: solve → log conflict clauses → verify →
//! extract the unsatisfiable core.

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use cdcl::{ProofClauseId, ProofTrace, SolveResult, Solver, SolverConfig, SolverStats};
use cnf::{Assignment, Clause, CnfFormula};
use proofver::{
    resolution_proof_from_chains, verify, verify_harnessed, ChainRef, CheckMode,
    ConflictClauseProof, ExhaustReason, Harness, Outcome, Progress,
    ResolutionProof, Verification, VerifyError,
};

/// Converts a solver [`ProofTrace`] into the checker's
/// [`ConflictClauseProof`].
#[must_use]
pub fn proof_from_trace(trace: &ProofTrace) -> ConflictClauseProof {
    ConflictClauseProof::new(trace.clauses())
}

/// Rebuilds the resolution-graph proof from a trace recorded with
/// [`SolverConfig::log_resolution_chains`] — the §5 baseline object.
///
/// # Panics
///
/// Panics if the trace has no antecedent chains.
#[must_use]
pub fn resolution_from_trace(formula: &CnfFormula, trace: &ProofTrace) -> ResolutionProof {
    assert!(trace.has_chains(), "trace was recorded without resolution chains");
    let sources: Vec<Clause> = formula.iter().cloned().collect();
    let chains: Vec<Vec<ChainRef>> = trace
        .steps
        .iter()
        .map(|s| {
            s.antecedents
                .as_ref()
                .expect("has_chains checked")
                .iter()
                .map(|&id| match id {
                    ProofClauseId::Original(i) => ChainRef::Source(i),
                    ProofClauseId::Learned(i) => ChainRef::Learned(i),
                })
                .collect()
        })
        .collect();
    resolution_proof_from_chains(sources, &chains)
}

/// Converts a solver [`ProofTrace`] into a deletion-annotated proof:
/// the conflict clauses interleaved with the solver's database-reduction
/// events, so the checker's propagation mirrors the solver's working
/// set (see [`proofver::AnnotatedProof`]).
#[must_use]
pub fn annotated_from_trace(trace: &ProofTrace) -> proofver::AnnotatedProof {
    use proofver::{ProofClauseRef, ProofEvent};
    let mut events = Vec::with_capacity(trace.steps.len() + trace.deletions.len());
    let mut del_iter = trace.deletions.iter().peekable();
    for (i, step) in trace.steps.iter().enumerate() {
        while let Some(d) = del_iter.next_if(|d| d.after_step <= i) {
            events.push(ProofEvent::Delete(match d.target {
                ProofClauseId::Original(k) => ProofClauseRef::Original(k),
                ProofClauseId::Learned(j) => ProofClauseRef::Learned(j),
            }));
        }
        events.push(ProofEvent::Add(step.clause.clone()));
    }
    for d in del_iter {
        events.push(ProofEvent::Delete(match d.target {
            ProofClauseId::Original(k) => ProofClauseRef::Original(k),
            ProofClauseId::Learned(j) => ProofClauseRef::Learned(j),
        }));
    }
    proofver::AnnotatedProof::new(events)
}

/// Everything produced by an UNSAT run of the pipeline.
#[derive(Clone, Debug)]
pub struct UnsatRun {
    /// The raw solver trace (clauses + resolution metadata).
    pub trace: ProofTrace,
    /// The conflict-clause proof handed to the checker.
    pub proof: ConflictClauseProof,
    /// The verification result, including the unsatisfiable core.
    pub verification: Verification,
    /// Solver statistics.
    pub stats: SolverStats,
    /// Wall-clock time spent solving (proof generation).
    pub solve_time: Duration,
    /// Wall-clock time spent verifying.
    pub verify_time: Duration,
}

impl UnsatRun {
    /// The paper's headline ratio: verification time over solving time
    /// (§6 reports 2–3×).
    #[must_use]
    pub fn verify_over_solve(&self) -> f64 {
        let solve = self.solve_time.as_secs_f64();
        if solve == 0.0 {
            0.0
        } else {
            self.verify_time.as_secs_f64() / solve
        }
    }
}

/// The outcome of [`solve_and_verify`].
#[derive(Clone, Debug)]
pub enum PipelineOutcome {
    /// Satisfiable; the model has been re-checked against the formula.
    Sat(Assignment),
    /// Unsatisfiable, with a *verified* proof.
    Unsat(Box<UnsatRun>),
}

impl PipelineOutcome {
    /// Extracts the UNSAT artefacts, if the formula was unsatisfiable.
    #[must_use]
    pub fn into_unsat(self) -> Option<Box<UnsatRun>> {
        match self {
            PipelineOutcome::Unsat(run) => Some(run),
            PipelineOutcome::Sat(_) => None,
        }
    }
}

/// An end-to-end pipeline failure.
#[derive(Debug)]
pub enum PipelineError {
    /// The solver ran out of its conflict budget.
    BudgetExhausted,
    /// The solver returned a model that does not satisfy the formula —
    /// the SAT-side analogue of a bogus proof (§1: "it is trivial to
    /// check whether the returned solution is correct").
    BadModel,
    /// The proof failed verification: the solver is buggy.
    Verify(VerifyError),
    /// Verification stopped on a resource limit before reaching a
    /// verdict — deliberately distinct from [`PipelineError::Verify`]:
    /// an exhausted budget says nothing about the proof.
    VerifyExhausted {
        /// The limit that was hit.
        reason: ExhaustReason,
        /// How far the checker got.
        progress: Progress,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::BudgetExhausted => write!(f, "conflict budget exhausted"),
            PipelineError::BadModel => {
                write!(f, "solver returned a model that does not satisfy the formula")
            }
            PipelineError::Verify(e) => write!(f, "proof verification failed: {e}"),
            PipelineError::VerifyExhausted { reason, progress } => write!(
                f,
                "proof verification exhausted its budget ({reason}) after \
                 {}/{} checks — no verdict",
                progress.steps_checked, progress.steps_total
            ),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Verify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VerifyError> for PipelineError {
    fn from(e: VerifyError) -> Self {
        PipelineError::Verify(e)
    }
}

/// Solves `formula`, and on an UNSAT answer verifies the emitted
/// conflict-clause proof with `Proof_verification2`; on a SAT answer
/// re-checks the model. Either way the answer returned has been
/// independently validated.
///
/// Proof logging is forced on regardless of `config.log_proof`.
///
/// # Errors
///
/// * [`PipelineError::BudgetExhausted`] if `config.max_conflicts` ran out;
/// * [`PipelineError::BadModel`] if a returned model is wrong;
/// * [`PipelineError::Verify`] if the proof fails verification.
///
/// # Examples
///
/// ```
/// use cdcl::SolverConfig;
/// use satverify::{solve_and_verify, PipelineOutcome};
///
/// let formula = cnfgen::pigeonhole(4);
/// match solve_and_verify(&formula, SolverConfig::default())? {
///     PipelineOutcome::Unsat(run) => {
///         assert_eq!(run.verification.core.len(), formula.num_clauses());
///     }
///     PipelineOutcome::Sat(_) => unreachable!("pigeonhole is UNSAT"),
/// }
/// # Ok::<(), satverify::PipelineError>(())
/// ```
pub fn solve_and_verify(
    formula: &CnfFormula,
    config: SolverConfig,
) -> Result<PipelineOutcome, PipelineError> {
    let config = config.log_proof(true);
    let mut solver = Solver::new(formula, config);
    let solve_start = Instant::now();
    let solve_span = obs::span!("pipeline.solve");
    let result = solver.solve();
    solve_span.finish();
    let solve_time = solve_start.elapsed();
    match result {
        SolveResult::Sat(model) => {
            if formula.is_satisfied_by(&model) {
                Ok(PipelineOutcome::Sat(model))
            } else {
                Err(PipelineError::BadModel)
            }
        }
        SolveResult::Unknown => Err(PipelineError::BudgetExhausted),
        SolveResult::Unsat(trace) => {
            let trace = trace.expect("proof logging forced on");
            let proof = proof_from_trace(&trace);
            let verify_start = Instant::now();
            let verify_span = obs::span!("pipeline.verify");
            let verification = verify(formula, &proof)?;
            verify_span.finish();
            let verify_time = verify_start.elapsed();
            Ok(PipelineOutcome::Unsat(Box::new(UnsatRun {
                proof,
                verification,
                stats: *solver.stats(),
                solve_time,
                verify_time,
                trace,
            })))
        }
    }
}

/// [`solve_and_verify`] under a fault-tolerant [`Harness`]: the
/// verification step runs with resource budgets and cooperative
/// cancellation, so a pipeline on a huge instance can be bounded or
/// interrupted without ever mistaking "ran out of budget" for a verdict.
///
/// # Errors
///
/// Everything [`solve_and_verify`] returns, plus
/// [`PipelineError::VerifyExhausted`] when the verification budget ran
/// out before a verdict was reached.
pub fn solve_and_verify_harnessed(
    formula: &CnfFormula,
    config: SolverConfig,
    harness: &Harness,
) -> Result<PipelineOutcome, PipelineError> {
    let config = config.log_proof(true);
    let mut solver = Solver::new(formula, config);
    let solve_start = Instant::now();
    let solve_span = obs::span!("pipeline.solve");
    let result = solver.solve();
    solve_span.finish();
    let solve_time = solve_start.elapsed();
    match result {
        SolveResult::Sat(model) => {
            if formula.is_satisfied_by(&model) {
                Ok(PipelineOutcome::Sat(model))
            } else {
                Err(PipelineError::BadModel)
            }
        }
        SolveResult::Unknown => Err(PipelineError::BudgetExhausted),
        SolveResult::Unsat(trace) => {
            let trace = trace.expect("proof logging forced on");
            let proof = proof_from_trace(&trace);
            let verify_start = Instant::now();
            let verify_span = obs::span!("pipeline.verify");
            let outcome =
                verify_harnessed(formula, &proof, CheckMode::MarkedOnly, harness);
            verify_span.finish();
            let verify_time = verify_start.elapsed();
            match outcome {
                Outcome::Verified(verification) => {
                    Ok(PipelineOutcome::Unsat(Box::new(UnsatRun {
                        proof,
                        verification,
                        stats: *solver.stats(),
                        solve_time,
                        verify_time,
                        trace,
                    })))
                }
                Outcome::Rejected { error, .. } => Err(PipelineError::Verify(error)),
                Outcome::Exhausted { reason, progress, .. } => {
                    Err(PipelineError::VerifyExhausted { reason, progress })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proofver::Budget;

    #[test]
    fn harnessed_pipeline_matches_plain_when_unlimited() {
        let formula = cnfgen::pigeonhole(4);
        let run = solve_and_verify_harnessed(
            &formula,
            SolverConfig::default(),
            &Harness::default(),
        )
        .expect("ok")
        .into_unsat()
        .expect("UNSAT");
        let plain = solve_and_verify(&formula, SolverConfig::default())
            .expect("ok")
            .into_unsat()
            .expect("UNSAT");
        assert!(run.verification.report.semantically_eq(&plain.verification.report));
    }

    #[test]
    fn harnessed_pipeline_surfaces_exhaustion_not_a_verdict() {
        let formula = cnfgen::pigeonhole(4);
        let harness = Harness::with_budget(Budget::unlimited().max_propagations(1));
        let err = solve_and_verify_harnessed(&formula, SolverConfig::default(), &harness)
            .expect_err("budget far too small");
        match err {
            PipelineError::VerifyExhausted { reason, progress } => {
                assert_eq!(reason, ExhaustReason::Propagations);
                assert!(progress.steps_total > 0);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn unsat_pipeline_end_to_end() {
        let formula = cnfgen::pigeonhole(5);
        let outcome = solve_and_verify(&formula, SolverConfig::default()).expect("ok");
        let run = outcome.into_unsat().expect("UNSAT");
        assert!(!run.proof.is_empty());
        assert_eq!(run.verification.core.len(), formula.num_clauses());
        assert_eq!(run.stats.conflicts as usize, run.proof.len());
    }

    #[test]
    fn sat_pipeline_checks_model() {
        let formula = cnfgen::pigeonhole_sat(4);
        match solve_and_verify(&formula, SolverConfig::default()).expect("ok") {
            PipelineOutcome::Sat(model) => assert!(formula.is_satisfied_by(&model)),
            PipelineOutcome::Unsat(_) => panic!("satisfiable instance"),
        }
    }

    #[test]
    fn budget_surfaces_as_error() {
        let formula = cnfgen::pigeonhole(7);
        let err = solve_and_verify(&formula, SolverConfig::new().max_conflicts(Some(2)))
            .expect_err("budget too small");
        assert!(matches!(err, PipelineError::BudgetExhausted));
    }

    #[test]
    fn resolution_rebuild_from_pipeline() {
        let formula = cnfgen::pigeonhole(4);
        let config = SolverConfig::new().log_resolution_chains(true);
        let run = solve_and_verify(&formula, config)
            .expect("ok")
            .into_unsat()
            .expect("UNSAT");
        let res = resolution_from_trace(&formula, &run.trace);
        assert!(res.check().is_ok());
        assert_eq!(res.num_internal_nodes() as u64, run.trace.num_resolutions());
    }

    #[test]
    fn proof_logging_forced_on() {
        let formula = cnfgen::pigeonhole(3);
        let run = solve_and_verify(&formula, SolverConfig::new().log_proof(false))
            .expect("ok")
            .into_unsat()
            .expect("UNSAT");
        assert!(!run.proof.is_empty());
    }
}
