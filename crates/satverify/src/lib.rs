//! End-to-end SAT solving with independently verified answers.
//!
//! This is the umbrella crate of the workspace reproducing **Goldberg &
//! Novikov, "Verification of Proofs of Unsatisfiability for CNF
//! Formulas" (DATE 2003)**. It re-exports the component crates and
//! provides the one-call pipeline [`solve_and_verify`]:
//!
//! 1. solve with the BerkMin-style CDCL solver ([`cdcl`]), recording
//!    every conflict clause;
//! 2. on UNSAT, check the conflict-clause proof with the paper's
//!    `Proof_verification2` ([`proofver`]), extracting an unsatisfiable
//!    core as a by-product;
//! 3. on SAT, re-check the model against the formula.
//!
//! Either way, a buggy solver cannot make you accept a wrong answer.
//!
//! # Examples
//!
//! ```
//! use cdcl::SolverConfig;
//! use satverify::{solve_and_verify, PipelineOutcome};
//!
//! let formula = cnfgen::eqv_adder(4); // adder equivalence miter: UNSAT
//! let run = solve_and_verify(&formula, SolverConfig::default())?
//!     .into_unsat()
//!     .expect("equivalent circuits give an UNSAT miter");
//! println!("core: {}", run.verification.core);
//! # Ok::<(), satverify::PipelineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod enumerate;
mod minimize;
mod mus;
mod pipeline;
pub mod report;
mod simplify;
mod sweep;

pub use enumerate::{count_models, enumerate_models, Enumeration};
pub use minimize::{minimize_core, MinimizedCore};
pub use mus::{minimal_core, minimal_core_of_verified, MinimalCore};
pub use sweep::{sweep, ProvedEquivalence, SweepResult};
pub use simplify::{
    preprocess, solve_and_verify_preprocessed, Preprocessed, ReconstructionStep,
    SimplifyConfig,
};
pub use pipeline::{
    annotated_from_trace, proof_from_trace, resolution_from_trace, solve_and_verify,
    solve_and_verify_harnessed, PipelineError, PipelineOutcome, UnsatRun,
};
pub use report::{HarnessSummary, RunReport};

// Re-export the component crates under stable names.
pub use bcp;
pub use cdcl;
pub use circuit;
pub use cnf;
pub use cnfgen;
pub use obs;
pub use proofver;
