//! Verified preprocessing: subsumption, self-subsuming resolution, and
//! NiVER-style bounded variable elimination.
//!
//! Preprocessing usually complicates proof checking — here it composes
//! cleanly with the paper's machinery instead:
//!
//! * every clause preprocessing *adds* is a resolvent of two existing
//!   clauses, and a resolvent is always RUP (falsify it: both parents
//!   become unit on the pivot's two phases and clash), so the added
//!   clauses form a valid *prefix* of a conflict-clause proof;
//! * RUP checks are monotone in the clause set, so a proof of the
//!   *simplified* formula still checks with the original clauses
//!   present.
//!
//! Consequently `solve: preprocess → CDCL` yields the proof
//! `[added resolvents] ++ [solver clauses]`, verifiable against the
//! **original** formula by the unmodified checker. SAT answers are
//! repaired by reconstructing values for eliminated variables.

use std::collections::HashSet;

use cdcl::SolverConfig;
use cnf::{Assignment, Clause, CnfFormula, Lit, Var};

use crate::pipeline::{solve_and_verify, PipelineError, PipelineOutcome, UnsatRun};

/// The outcome of [`preprocess`].
#[derive(Clone, Debug)]
pub struct Preprocessed {
    /// The simplified formula (same variable universe).
    pub formula: CnfFormula,
    /// Resolvents added during preprocessing, in derivation order — a
    /// valid conflict-clause proof prefix for the original formula.
    pub added: Vec<Clause>,
    /// The chronological log of satisfiability-preserving (but not
    /// equivalence-preserving) removals, consumed in reverse by
    /// [`Preprocessed::reconstruct_model`].
    pub reconstruction: Vec<ReconstructionStep>,
    /// Clauses removed by subsumption.
    pub num_subsumed: usize,
    /// Literals removed by self-subsuming resolution.
    pub num_strengthened: usize,
}

/// One solution-reconstruction obligation recorded by [`preprocess`].
#[derive(Clone, Debug)]
pub enum ReconstructionStep {
    /// A variable was eliminated by resolution; `clauses` are the
    /// removed clauses mentioning it.
    Eliminated {
        /// The eliminated variable.
        var: Var,
        /// Its removed clauses.
        clauses: Vec<Clause>,
    },
    /// A blocked clause was removed; flipping `lit` true repairs any
    /// model that violates `clause`.
    Blocked {
        /// The blocking literal.
        lit: Lit,
        /// The removed clause.
        clause: Clause,
    },
}

impl Preprocessed {
    /// Extends a model of the simplified formula to a model of the
    /// original: eliminated variables are assigned (newest elimination
    /// first) so that all their original clauses are satisfied.
    ///
    /// # Panics
    ///
    /// Panics if `model` does not actually satisfy the simplified
    /// formula's constraints on the eliminated variables (impossible for
    /// models of [`Preprocessed::formula`]).
    #[must_use]
    pub fn reconstruct_model(&self, model: &Assignment) -> Assignment {
        let mut full = model.clone();
        for step in self.reconstruction.iter().rev() {
            match step {
                ReconstructionStep::Eliminated { var, clauses } => {
                    full.unassign(*var);
                    // choose the phase satisfying every clause that needs it
                    let needs_true = clauses.iter().any(|c| {
                        c.contains(var.positive())
                            && !c.lits().iter().any(|&l| {
                                l.var() != *var
                                    && full.lit_value(l) == cnf::LBool::True
                            })
                    });
                    full.assign(var.lit(needs_true));
                    for c in clauses {
                        assert!(
                            full.eval_clause(c) == cnf::LBool::True,
                            "model reconstruction failed for {c}"
                        );
                    }
                }
                ReconstructionStep::Blocked { lit, clause } => {
                    if full.eval_clause(clause) != cnf::LBool::True {
                        // flipping the blocking literal satisfies the
                        // clause and cannot break any clause with ¬lit
                        // (each resolves tautologically with this one)
                        full.unassign(lit.var());
                        full.assign(*lit);
                        assert!(
                            full.eval_clause(clause) == cnf::LBool::True,
                            "blocked-clause repair failed for {clause}"
                        );
                    }
                }
            }
        }
        full
    }

    /// Number of variables eliminated by resolution.
    #[must_use]
    pub fn num_eliminated(&self) -> usize {
        self.reconstruction
            .iter()
            .filter(|s| matches!(s, ReconstructionStep::Eliminated { .. }))
            .count()
    }

    /// Number of blocked clauses removed.
    #[must_use]
    pub fn num_blocked(&self) -> usize {
        self.reconstruction
            .iter()
            .filter(|s| matches!(s, ReconstructionStep::Blocked { .. }))
            .count()
    }
}

/// Limits for [`preprocess`].
#[derive(Clone, Copy, Debug)]
pub struct SimplifyConfig {
    /// Eliminate a variable only if the resolvent count does not exceed
    /// its occurrence count (NiVER's non-increasing rule) and no single
    /// resolvent exceeds this length.
    pub max_resolvent_len: usize,
    /// Upper bound on occurrences (per phase) of an elimination
    /// candidate.
    pub max_occurrences: usize,
    /// Fixpoint round limit.
    pub max_rounds: usize,
    /// Enable blocked-clause elimination (clause deletion is free for
    /// the stitched UNSAT proof — checks run against the original
    /// formula — and SAT models are repaired by flipping the blocking
    /// literal).
    pub blocked_clause_elimination: bool,
}

impl Default for SimplifyConfig {
    fn default() -> Self {
        SimplifyConfig {
            max_resolvent_len: 12,
            max_occurrences: 10,
            max_rounds: 4,
            blocked_clause_elimination: true,
        }
    }
}

/// Applies subsumption, self-subsuming resolution, and bounded variable
/// elimination to a fixpoint (bounded by `config.max_rounds`).
///
/// The result is equisatisfiable with `formula`; UNSAT proofs of the
/// result extend to proofs of `formula` by prefixing
/// [`Preprocessed::added`], and SAT models extend via
/// [`Preprocessed::reconstruct_model`].
#[must_use]
pub fn preprocess(formula: &CnfFormula, config: SimplifyConfig) -> Preprocessed {
    // working set: clauses as sorted literal vectors, with tombstones
    let mut added: Vec<Clause> = Vec::new();
    let mut clauses: Vec<Option<Clause>> = formula
        .iter()
        .map(|c| {
            let n = c.normalized();
            if n.is_tautology() {
                return None; // tautologies contribute nothing
            }
            if n.len() != c.len() {
                // duplicate literals were removed: the deduplicated
                // clause is RUP against the original (falsifying it
                // falsifies the original clause), but later resolvents
                // built from it are not RUP against the *raw* original —
                // a duplicated watched pair never propagates. Emit the
                // normalisation as an explicit proof step.
                added.push(n.clone());
            }
            Some(n)
        })
        .collect();
    let mut reconstruction: Vec<ReconstructionStep> = Vec::new();
    let mut eliminated_set: HashSet<Var> = HashSet::new();
    let mut num_subsumed = 0usize;
    let mut num_strengthened = 0usize;

    for _ in 0..config.max_rounds {
        let mut changed = false;

        // --- subsumption & self-subsumption (quadratic; fine at our
        // formula sizes) -----------------------------------------------
        let live: Vec<usize> =
            (0..clauses.len()).filter(|&i| clauses[i].is_some()).collect();
        for &i in &live {
            let Some(ci) = clauses[i].clone() else { continue };
            for &j in &live {
                if i == j {
                    continue;
                }
                let Some(cj) = clauses[j].clone() else { continue };
                if ci.len() > cj.len() {
                    continue;
                }
                // subsumption: ci ⊆ cj → drop cj
                if ci.lits().iter().all(|l| cj.contains(*l)) {
                    clauses[j] = None;
                    num_subsumed += 1;
                    changed = true;
                    continue;
                }
                // self-subsumption: ci \ {l} ⊆ cj and ¬l ∈ cj →
                // strengthen cj to cj \ {¬l} (a resolvent of ci and cj)
                let mut pivot = None;
                let mut fits = true;
                for &l in ci.lits() {
                    if cj.contains(l) {
                        continue;
                    }
                    if cj.contains(!l) && pivot.is_none() {
                        pivot = Some(l);
                    } else {
                        fits = false;
                        break;
                    }
                }
                if let (true, Some(p)) = (fits, pivot) {
                    let strengthened: Vec<Lit> = cj
                        .lits()
                        .iter()
                        .copied()
                        .filter(|&l| l != !p)
                        .collect();
                    let resolvent = Clause::new(strengthened).normalized();
                    added.push(resolvent.clone());
                    clauses[j] = Some(resolvent);
                    num_strengthened += 1;
                    changed = true;
                }
            }
        }

        // --- blocked-clause elimination ---------------------------------
        // A clause C is blocked on l ∈ C when every clause D with ¬l
        // resolves tautologically with C. Removing C preserves
        // satisfiability (flip l in any model of the rest), and for the
        // UNSAT direction removal is free: proofs are checked against
        // the ORIGINAL formula, which still contains C.
        if config.blocked_clause_elimination {
            for i in 0..clauses.len() {
                let Some(ci) = clauses[i].clone() else { continue };
                let mut blocking = None;
                'lits: for &l in ci.lits() {
                    for cj in clauses.iter().flatten() {
                        if !cj.contains(!l) {
                            continue;
                        }
                        // resolvent tautologous ⇔ another clashing pair
                        let tautologous = ci
                            .lits()
                            .iter()
                            .any(|&x| x != l && cj.contains(!x));
                        if !tautologous {
                            continue 'lits;
                        }
                    }
                    blocking = Some(l);
                    break;
                }
                if let Some(l) = blocking {
                    reconstruction.push(ReconstructionStep::Blocked {
                        lit: l,
                        clause: ci,
                    });
                    clauses[i] = None;
                    changed = true;
                }
            }
        }

        // --- bounded variable elimination ------------------------------
        for v in 0..formula.num_vars() {
            let var = Var::new(v as u32);
            if eliminated_set.contains(&var) {
                continue;
            }
            let pos: Vec<usize> = (0..clauses.len())
                .filter(|&i| {
                    clauses[i]
                        .as_ref()
                        .is_some_and(|c| c.contains(var.positive()))
                })
                .collect();
            let neg: Vec<usize> = (0..clauses.len())
                .filter(|&i| {
                    clauses[i]
                        .as_ref()
                        .is_some_and(|c| c.contains(var.negative()))
                })
                .collect();
            if pos.is_empty() && neg.is_empty() {
                continue;
            }
            if pos.len() > config.max_occurrences || neg.len() > config.max_occurrences
            {
                continue;
            }
            // build all non-tautological resolvents
            let mut resolvents: Vec<Clause> = Vec::new();
            let mut too_big = false;
            'outer: for &i in &pos {
                for &j in &neg {
                    let ci = clauses[i].as_ref().expect("live");
                    let cj = clauses[j].as_ref().expect("live");
                    let r = ci
                        .resolve_on(cj, var)
                        .expect("clauses contain opposite phases")
                        .normalized();
                    if r.is_tautology() {
                        continue;
                    }
                    if r.len() > config.max_resolvent_len {
                        too_big = true;
                        break 'outer;
                    }
                    resolvents.push(r);
                }
            }
            // NiVER rule: do not increase the clause count
            if too_big || resolvents.len() > pos.len() + neg.len() {
                continue;
            }
            // commit: record, add resolvents, drop the var's clauses
            let removed: Vec<Clause> = pos
                .iter()
                .chain(&neg)
                .map(|&i| clauses[i].clone().expect("live"))
                .collect();
            for &i in pos.iter().chain(&neg) {
                clauses[i] = None;
            }
            for r in resolvents {
                added.push(r.clone());
                clauses.push(Some(r));
            }
            reconstruction
                .push(ReconstructionStep::Eliminated { var, clauses: removed });
            eliminated_set.insert(var);
            changed = true;
        }

        if !changed {
            break;
        }
    }

    let mut simplified = CnfFormula::with_vars(formula.num_vars());
    for c in clauses.into_iter().flatten() {
        simplified.add_clause(c);
    }
    Preprocessed {
        formula: simplified,
        added,
        reconstruction,
        num_subsumed,
        num_strengthened,
    }
}

/// Solves with preprocessing, returning answers verified against the
/// **original** formula: an UNSAT proof is the preprocessing resolvents
/// followed by the solver's conflict clauses, checked as one
/// conflict-clause proof; a SAT model is reconstructed and re-checked.
///
/// # Errors
///
/// See [`solve_and_verify`]; additionally fails if model reconstruction
/// produces a non-model (a preprocessor bug).
pub fn solve_and_verify_preprocessed(
    formula: &CnfFormula,
    simplify: SimplifyConfig,
    config: SolverConfig,
) -> Result<PipelineOutcome, PipelineError> {
    let pre = preprocess(formula, simplify);
    match solve_and_verify(&pre.formula, config)? {
        PipelineOutcome::Sat(model) => {
            let full = pre.reconstruct_model(&model);
            if formula.is_satisfied_by(&full) {
                Ok(PipelineOutcome::Sat(full))
            } else {
                Err(PipelineError::BadModel)
            }
        }
        PipelineOutcome::Unsat(run) => {
            // stitch: added resolvents ++ solver clauses, then verify
            // against the ORIGINAL formula
            let mut clauses = pre.added.clone();
            clauses.extend(run.proof.iter().cloned());
            let stitched = proofver::ConflictClauseProof::new(clauses);
            let verification = proofver::verify(formula, &stitched)?;
            Ok(PipelineOutcome::Unsat(Box::new(UnsatRun {
                proof: stitched,
                verification,
                ..*run
            })))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsumption_removes_weaker_clauses() {
        let f = CnfFormula::from_dimacs_clauses(&[vec![1], vec![1, 2], vec![1, 2, 3]]);
        let pre = preprocess(&f, SimplifyConfig::default());
        assert!(pre.num_subsumed >= 2);
        // x1 may then be eliminated entirely (it is pure) — either way
        // the result is satisfiable like the original
        assert!(pre.formula.num_clauses() <= 1);
    }

    #[test]
    fn self_subsumption_strengthens() {
        // (1 2) and (¬1 2 3): strengthen the latter to (2 3)
        let f = CnfFormula::from_dimacs_clauses(&[vec![1, 2], vec![-1, 2, 3]]);
        let pre = preprocess(&f, SimplifyConfig::default());
        assert!(pre.num_strengthened >= 1);
        assert!(pre.added.iter().any(|c| c.same_lits(&Clause::from_dimacs(&[2, 3]))));
    }

    #[test]
    fn added_resolvents_are_rup_against_the_original() {
        let f = cnfgen::pigeonhole(4);
        let pre = preprocess(&f, SimplifyConfig::default());
        let prefix = proofver::ConflictClauseProof::new(pre.added.clone());
        for (i, clause) in prefix.clauses().iter().enumerate() {
            let head = proofver::ConflictClauseProof::new(
                prefix.clauses()[..=i].to_vec(),
            );
            // check the i-th addition given the earlier ones: use the
            // implication checker with the clause itself as target
            let earlier =
                proofver::ConflictClauseProof::new(prefix.clauses()[..i].to_vec());
            proofver::verify_implication(&f, &earlier, clause).unwrap_or_else(|e| {
                panic!("added clause #{i} {clause} is not RUP: {e}")
            });
            drop(head);
        }
    }

    #[test]
    fn unsat_pipeline_verifies_against_original() {
        for formula in [cnfgen::pigeonhole(5), cnfgen::tseitin_grid(3, 3)] {
            let outcome = solve_and_verify_preprocessed(
                &formula,
                SimplifyConfig::default(),
                SolverConfig::default(),
            )
            .expect("pipeline");
            let run = outcome.into_unsat().expect("UNSAT");
            assert_eq!(run.verification.report.num_original, formula.num_clauses());
        }
    }

    #[test]
    fn sat_models_are_reconstructed() {
        let f = CnfFormula::from_dimacs_clauses(&[
            vec![1, 2],
            vec![-2, 3],
            vec![-3, 4],
            vec![1, -4],
        ]);
        let outcome = solve_and_verify_preprocessed(
            &f,
            SimplifyConfig::default(),
            SolverConfig::default(),
        )
        .expect("pipeline");
        match outcome {
            PipelineOutcome::Sat(model) => {
                assert!(f.is_satisfied_by(&model));
                assert_eq!(model.num_assigned(), f.num_vars());
            }
            PipelineOutcome::Unsat(_) => panic!("formula is SAT"),
        }
    }

    #[test]
    fn blocked_clauses_are_removed_and_models_repaired() {
        // (1 ∨ 2) is blocked on 1 when no clause contains ¬1 (pure
        // literal — the degenerate blocked case); (¬2 ∨ 3) constrains
        // the rest
        let f = CnfFormula::from_dimacs_clauses(&[vec![1, 2], vec![-2, 3]]);
        let pre = preprocess(&f, SimplifyConfig::default());
        assert!(pre.num_blocked() + pre.num_eliminated() > 0);
        // end-to-end SAT with reconstruction
        let outcome = solve_and_verify_preprocessed(
            &f,
            SimplifyConfig::default(),
            SolverConfig::default(),
        )
        .expect("pipeline");
        match outcome {
            PipelineOutcome::Sat(model) => assert!(f.is_satisfied_by(&model)),
            PipelineOutcome::Unsat(_) => panic!("formula is SAT"),
        }
    }

    #[test]
    fn bce_keeps_unsat_instances_unsat() {
        // Tseitin encodings are full of blocked clauses; the verdict and
        // the stitched proof must survive their removal
        let f = cnfgen::eqv_adder(3);
        let pre = preprocess(&f, SimplifyConfig::default());
        assert!(pre.num_blocked() > 0, "expected blocked clauses in a miter");
        let out = solve_and_verify_preprocessed(
            &f,
            SimplifyConfig::default(),
            SolverConfig::default(),
        )
        .expect("pipeline");
        assert!(out.into_unsat().is_some());
    }

    #[test]
    fn duplicate_literal_clauses_get_normalisation_steps() {
        // (6∨6) ∧ (¬6∨¬6): semantically a conflicting unit pair, but the
        // duplicated literals defeat watched-literal propagation — the
        // regression that required emitting normalisations as proof steps
        let f = CnfFormula::from_dimacs_clauses(&[vec![6, 6], vec![-6, -6]]);
        let outcome = solve_and_verify_preprocessed(
            &f,
            SimplifyConfig::default(),
            SolverConfig::default(),
        )
        .expect("pipeline");
        assert!(outcome.into_unsat().is_some());
    }

    #[test]
    fn elimination_is_bounded() {
        let config = SimplifyConfig { max_occurrences: 0, ..SimplifyConfig::default() };
        let f = cnfgen::pigeonhole(4);
        let pre = preprocess(&f, config);
        assert_eq!(pre.num_eliminated(), 0, "occurrence cap 0 forbids elimination");
    }

    #[test]
    fn preprocessing_preserves_circuit_verdicts() {
        // UNSAT stays UNSAT, SAT stays SAT, through a real workload
        let unsat = cnfgen::eqv_adder(4);
        let out = solve_and_verify_preprocessed(
            &unsat,
            SimplifyConfig::default(),
            SolverConfig::default(),
        )
        .expect("pipeline");
        assert!(out.into_unsat().is_some());

        let sat = cnfgen::pipe_cpu_buggy(3);
        let out = solve_and_verify_preprocessed(
            &sat,
            SimplifyConfig::default(),
            SolverConfig::default(),
        )
        .expect("pipeline");
        match out {
            PipelineOutcome::Sat(model) => assert!(sat.is_satisfied_by(&model)),
            PipelineOutcome::Unsat(_) => panic!("buggy miter is SAT"),
        }
    }
}
