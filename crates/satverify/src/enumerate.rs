//! Verified model enumeration (All-SAT).
//!
//! Repeatedly solve, record the model, and add a *blocking clause*
//! excluding it — the incremental interface makes each iteration reuse
//! everything learned so far. Every reported model is re-checked against
//! the formula, and the final "no more models" claim is established by a
//! fresh, fully *verified* UNSAT run over the formula plus all blocking
//! clauses (incremental additions invalidate in-flight proof logging, so
//! the completeness proof is regenerated from scratch).

use cdcl::{SolveResult, Solver, SolverConfig};
use cnf::{Assignment, Clause, CnfFormula, Lit, Var};

use crate::pipeline::{solve_and_verify, PipelineError, PipelineOutcome};

/// The result of [`enumerate_models`].
#[derive(Clone, Debug)]
pub struct Enumeration {
    /// The distinct total models found, in discovery order.
    pub models: Vec<Assignment>,
    /// `true` when the enumeration is exhaustive — established by a
    /// verified UNSAT proof over the blocked formula. `false` when the
    /// `limit` stopped the search early.
    pub complete: bool,
}

/// Enumerates up to `limit` *total* models of `formula` (assignments to
/// every declared variable, so a formula with unconstrained variables
/// has one model per combination of their values).
///
/// # Errors
///
/// * [`PipelineError::BadModel`] if the solver returns a non-model;
/// * [`PipelineError::Verify`] if the final completeness proof fails;
/// * [`PipelineError::BudgetExhausted`] if a conflict budget runs out.
///
/// # Examples
///
/// ```
/// use cdcl::SolverConfig;
/// use cnf::CnfFormula;
/// use satverify::enumerate_models;
///
/// // x1 ∨ x2 has three total models
/// let f = CnfFormula::from_dimacs_clauses(&[vec![1, 2]]);
/// let e = enumerate_models(&f, SolverConfig::default(), 10)?;
/// assert_eq!(e.models.len(), 3);
/// assert!(e.complete);
/// # Ok::<(), satverify::PipelineError>(())
/// ```
pub fn enumerate_models(
    formula: &CnfFormula,
    config: SolverConfig,
    limit: usize,
) -> Result<Enumeration, PipelineError> {
    let mut solver = Solver::new(formula, config.clone());
    let mut models = Vec::new();
    let mut blocking: Vec<Clause> = Vec::new();

    loop {
        match solver.solve() {
            SolveResult::Sat(model) => {
                if !formula.is_satisfied_by(&model) {
                    return Err(PipelineError::BadModel);
                }
                // block this exact total assignment
                let block: Vec<Lit> = (0..formula.num_vars())
                    .map(|i| {
                        let v = Var::new(i as u32);
                        let value = model
                            .var_value(v)
                            .to_bool()
                            .expect("SAT models are total");
                        v.lit(!value)
                    })
                    .collect();
                solver.add_clause(&block);
                blocking.push(Clause::new(block));
                models.push(model);
                if models.len() >= limit {
                    return Ok(Enumeration { models, complete: false });
                }
            }
            SolveResult::Unsat(_) => break,
            SolveResult::Unknown => return Err(PipelineError::BudgetExhausted),
        }
    }

    // completeness: verify a fresh proof over formula + blocking clauses
    let mut blocked = formula.clone();
    for c in &blocking {
        blocked.add_clause(c.clone());
    }
    match solve_and_verify(&blocked, config)? {
        PipelineOutcome::Unsat(_) => Ok(Enumeration { models, complete: true }),
        PipelineOutcome::Sat(_) => Err(PipelineError::BadModel),
    }
}

/// Counts the total models of `formula` (up to `limit`).
///
/// # Errors
///
/// See [`enumerate_models`].
pub fn count_models(
    formula: &CnfFormula,
    config: SolverConfig,
    limit: usize,
) -> Result<usize, PipelineError> {
    Ok(enumerate_models(formula, config, limit)?.models.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_count(formula: &CnfFormula) -> usize {
        let n = formula.num_vars();
        assert!(n <= 16);
        (0u32..(1 << n))
            .filter(|bits| {
                formula.iter().all(|c| {
                    c.lits()
                        .iter()
                        .any(|&l| (bits >> l.var().idx() & 1 == 1) == l.is_positive())
                })
            })
            .count()
    }

    #[test]
    fn counts_match_brute_force() {
        for clauses in [
            vec![vec![1, 2]],
            vec![vec![1, 2], vec![-1, -2]],
            vec![vec![1], vec![2, 3], vec![-2, -3]],
            vec![vec![1, 2, 3]],
        ] {
            let f = CnfFormula::from_dimacs_clauses(&clauses);
            let expected = brute_force_count(&f);
            let e = enumerate_models(&f, SolverConfig::default(), 1000).expect("ok");
            assert_eq!(e.models.len(), expected, "{clauses:?}");
            assert!(e.complete);
            // all models distinct and genuine
            for (i, m) in e.models.iter().enumerate() {
                assert!(f.is_satisfied_by(m));
                for other in &e.models[i + 1..] {
                    assert_ne!(m, other, "duplicate model");
                }
            }
        }
    }

    #[test]
    fn unsat_formula_has_zero_models() {
        let f = CnfFormula::from_dimacs_clauses(&[vec![1], vec![-1]]);
        let e = enumerate_models(&f, SolverConfig::default(), 10).expect("ok");
        assert!(e.models.is_empty());
        assert!(e.complete);
    }

    #[test]
    fn limit_stops_early_and_reports_incomplete() {
        // unconstrained 4 variables: 16 total models
        let f = CnfFormula::from_dimacs_clauses(&[vec![1, -1, 2, 3, 4]]);
        let e = enumerate_models(&f, SolverConfig::default(), 5).expect("ok");
        assert_eq!(e.models.len(), 5);
        assert!(!e.complete);
    }

    #[test]
    fn count_models_helper() {
        let f = CnfFormula::from_dimacs_clauses(&[vec![1, 2], vec![-1, 2]]);
        // models: x2=1 with x1 free → 2
        assert_eq!(count_models(&f, SolverConfig::default(), 100).expect("ok"), 2);
    }

    #[test]
    fn pigeonhole_sat_model_count() {
        // pigeonhole_sat(3): 3 pigeons, 3 holes → 3! = 6 placements;
        // but extra models where a pigeon occupies several holes are
        // forbidden only pairwise per hole… count against brute force
        let f = cnfgen::pigeonhole_sat(2);
        let expected = brute_force_count(&f);
        assert_eq!(
            count_models(&f, SolverConfig::default(), 1000).expect("ok"),
            expected
        );
    }
}
