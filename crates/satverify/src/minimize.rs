//! Unsatisfiable-core minimisation.
//!
//! The core extracted by `Proof_verification2` is sound but not minimal:
//! it contains every original clause that participated in *some* check's
//! conflict. Re-solving the core and re-extracting often shrinks it
//! further, because the solver finds a different (smaller) refutation of
//! the sub-formula. Iterating to a fixpoint is the classic follow-on to
//! the paper (Zhang & Malik 2003) and converges quickly in practice.

use cdcl::SolverConfig;
use cnf::CnfFormula;

use crate::pipeline::{solve_and_verify, PipelineError, PipelineOutcome};

/// The result of a [`minimize_core`] run.
#[derive(Clone, Debug)]
pub struct MinimizedCore {
    /// Indices into the *original* formula forming the final core.
    pub indices: Vec<usize>,
    /// The final core as a formula.
    pub formula: CnfFormula,
    /// Core size after each iteration (strictly decreasing, then stable).
    pub trajectory: Vec<usize>,
}

impl MinimizedCore {
    /// Number of clauses in the final core.
    #[must_use]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Returns `true` if the core is empty (the original formula
    /// contained the empty clause).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// Iteratively re-solves and re-extracts the unsatisfiable core of
/// `formula` until it stops shrinking (or `max_rounds` is hit).
///
/// Each intermediate core is *verified* — the answer chain is as
/// trustworthy as a single verified run.
///
/// # Errors
///
/// Propagates [`PipelineError`]; also returns
/// [`PipelineError::BadModel`]-style failure if an intermediate core
/// unexpectedly turns out satisfiable (impossible for a correct checker;
/// kept as a defensive error path rather than a panic).
///
/// # Examples
///
/// ```
/// use cdcl::SolverConfig;
/// use satverify::minimize_core;
///
/// // pigeonhole plus irrelevant ballast clauses
/// let mut f = cnfgen::pigeonhole(4);
/// let n = f.num_clauses();
/// f.add_dimacs_clause(&[100, 101]);
/// f.add_dimacs_clause(&[-100, 102]);
///
/// let core = minimize_core(&f, SolverConfig::default(), 8)?;
/// assert_eq!(core.len(), n, "ballast is gone, php core is minimal");
/// # Ok::<(), satverify::PipelineError>(())
/// ```
pub fn minimize_core(
    formula: &CnfFormula,
    config: SolverConfig,
    max_rounds: usize,
) -> Result<MinimizedCore, PipelineError> {
    // indices[i] = position of current clause i in the ORIGINAL formula
    let mut indices: Vec<usize> = (0..formula.num_clauses()).collect();
    let mut current = formula.clone();
    let mut trajectory = Vec::new();

    for _ in 0..max_rounds.max(1) {
        let run = match solve_and_verify(&current, config.clone())? {
            PipelineOutcome::Unsat(run) => run,
            PipelineOutcome::Sat(_) => return Err(PipelineError::BadModel),
        };
        let core = run.verification.core;
        trajectory.push(core.len());
        if core.len() == current.num_clauses() {
            break; // fixpoint
        }
        indices = core.indices().iter().map(|&i| indices[i]).collect();
        current = core.to_formula(&current);
    }
    Ok(MinimizedCore { indices, formula: current, trajectory })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballast_is_removed() {
        let mut f = cnfgen::pigeonhole(4);
        let php_clauses = f.num_clauses();
        // satisfiable ballast over fresh variables
        f.add_dimacs_clause(&[100, 101]);
        f.add_dimacs_clause(&[-101, 102]);
        f.add_dimacs_clause(&[-102]);
        let core = minimize_core(&f, SolverConfig::default(), 8).expect("ok");
        assert_eq!(core.len(), php_clauses);
        // indices refer to the original formula and exclude the ballast
        assert!(core.indices.iter().all(|&i| i < php_clauses));
        assert!(cdcl::solve(&core.formula, SolverConfig::default()).is_unsat());
    }

    #[test]
    fn trajectory_is_monotone_nonincreasing() {
        let mut f = cnfgen::pigeonhole(5);
        for ballast in 0..10 {
            f.add_dimacs_clause(&[200 + ballast, 300 + ballast]);
        }
        let core = minimize_core(&f, SolverConfig::default(), 8).expect("ok");
        assert!(
            core.trajectory.windows(2).all(|w| w[1] <= w[0]),
            "{:?}",
            core.trajectory
        );
        assert!(!core.is_empty());
    }

    #[test]
    fn minimal_instance_is_a_one_round_fixpoint() {
        let f = cnfgen::pigeonhole(4);
        let core = minimize_core(&f, SolverConfig::default(), 8).expect("ok");
        assert_eq!(core.len(), f.num_clauses());
        assert_eq!(core.trajectory.len(), 1);
    }

    #[test]
    fn round_cap_respected() {
        let f = cnfgen::pigeonhole(4);
        let core = minimize_core(&f, SolverConfig::default(), 1).expect("ok");
        assert_eq!(core.trajectory.len(), 1);
    }
}
