//! Minimal unsatisfiable subsets via assumption-based incremental
//! solving.
//!
//! The paper's §4 core is whatever `Proof_verification2` happens to
//! mark; it is unsatisfiable but rarely minimal. The classic follow-on
//! uses *selector variables*: clause `Cᵢ` becomes `Cᵢ ∨ ¬sᵢ`, and
//! solving under assumptions `{sᵢ}` turns clause-set membership into
//! assumption membership. The failed-assumption clause of an UNSAT
//! answer names a core; deleting one selector at a time and re-solving
//! *incrementally* (all learned clauses are reused across calls) shrinks
//! it to a minimal one. Every UNSAT answer along the way is verified
//! through [`proofver::verify_implication`].

use cdcl::{AssumptionResult, Solver, SolverConfig};
use cnf::{Clause, CnfFormula, Lit};
use proofver::{verify_implication, ConflictClauseProof};

use crate::pipeline::PipelineError;

/// A verified minimal unsatisfiable subset (MUS).
#[derive(Clone, Debug)]
pub struct MinimalCore {
    /// Indices into the original formula, in increasing order. Removing
    /// *any* of these clauses makes the remainder satisfiable.
    pub indices: Vec<usize>,
    /// Incremental solver calls spent.
    pub num_queries: usize,
}

impl MinimalCore {
    /// Number of clauses in the MUS.
    #[must_use]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when the original formula contained an empty clause (the
    /// only way a MUS can be a single empty clause is still len 1 — an
    /// empty MUS cannot occur for an unsatisfiable formula).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Materialises the MUS as a formula.
    #[must_use]
    pub fn to_formula(&self, formula: &CnfFormula) -> CnfFormula {
        formula.subformula(&self.indices)
    }
}

/// The selector-augmented formula: clause `Cᵢ` becomes `Cᵢ ∨ ¬sᵢ` with a
/// fresh selector variable `sᵢ` per clause.
fn augment_with_selectors(formula: &CnfFormula) -> (CnfFormula, Vec<Lit>) {
    let mut augmented = CnfFormula::with_vars(formula.num_vars());
    let selectors: Vec<Lit> = (0..formula.num_clauses())
        .map(|_| augmented.new_var().positive())
        .collect();
    // note: selector vars come first after the original block to keep
    // original literal names unchanged
    for (clause, &s) in formula.iter().zip(&selectors) {
        let mut lits = clause.lits().to_vec();
        lits.push(!s);
        augmented.add_clause(Clause::new(lits));
    }
    (augmented, selectors)
}

/// Extracts a *minimal* unsatisfiable subset of `formula` by
/// destructive deletion over selector assumptions, verifying every
/// UNSAT-under-assumptions answer against the proof checker.
///
/// # Errors
///
/// * [`PipelineError::BadModel`] if the formula is satisfiable (there is
///   no core to extract) or an intermediate answer fails verification;
/// * [`PipelineError::BudgetExhausted`] if `config.max_conflicts` runs
///   out in some query.
///
/// # Examples
///
/// ```
/// use cdcl::SolverConfig;
/// use cnf::CnfFormula;
/// use satverify::minimal_core;
///
/// // an UNSAT chain plus two irrelevant clauses
/// let f = CnfFormula::from_dimacs_clauses(&[
///     vec![1], vec![-1, 2], vec![-2], vec![3, 4], vec![-3, 4],
/// ]);
/// let mus = minimal_core(&f, SolverConfig::default())?;
/// assert_eq!(mus.indices, vec![0, 1, 2]);
/// # Ok::<(), satverify::PipelineError>(())
/// ```
pub fn minimal_core(
    formula: &CnfFormula,
    config: SolverConfig,
) -> Result<MinimalCore, PipelineError> {
    let config = config.log_proof(true);
    let (augmented, selectors) = augment_with_selectors(formula);
    let mut solver = Solver::new(&augmented, config);
    let mut num_queries = 0usize;
    // accumulated proof across incremental calls, for verification
    let mut lemmas: Vec<Clause> = Vec::new();

    // helper: one verified incremental query
    let query = |solver: &mut Solver,
                     lemmas: &mut Vec<Clause>,
                     assumptions: &[Lit]|
     -> Result<Option<Clause>, PipelineError> {
        match solver.solve_with_assumptions(assumptions) {
            AssumptionResult::Sat(model) => {
                if augmented.is_satisfied_by(&model) {
                    Ok(None)
                } else {
                    Err(PipelineError::BadModel)
                }
            }
            AssumptionResult::UnsatUnderAssumptions { failed, proof } => {
                lemmas.extend(proof.expect("logging forced on").clauses());
                let accumulated = ConflictClauseProof::new(lemmas.clone());
                verify_implication(&augmented, &accumulated, &failed)?;
                Ok(Some(failed))
            }
            AssumptionResult::Unsat(proof) => {
                // cannot happen for selector-augmented formulas (setting
                // all selectors false satisfies everything), but handle
                // it as "empty failed clause" for robustness
                lemmas.extend(proof.expect("logging forced on").clauses());
                Ok(Some(Clause::empty()))
            }
            AssumptionResult::Unknown => Err(PipelineError::BudgetExhausted),
        }
    };

    // initial core from the failed-assumption clause
    num_queries += 1;
    let Some(failed) = query(&mut solver, &mut lemmas, &selectors)? else {
        return Err(PipelineError::BadModel); // satisfiable: no core
    };
    let mut core: Vec<usize> = failed
        .lits()
        .iter()
        .map(|l| selector_index(formula, *l))
        .collect();
    core.sort_unstable();
    core.dedup();

    // destructive deletion to a fixpoint
    let mut i = 0;
    while i < core.len() {
        let candidate = core[i];
        let assumptions: Vec<Lit> = core
            .iter()
            .filter(|&&c| c != candidate)
            .map(|&c| selectors[c])
            .collect();
        num_queries += 1;
        match query(&mut solver, &mut lemmas, &assumptions)? {
            Some(failed) => {
                // still UNSAT without `candidate`: shrink to the (possibly
                // much smaller) new failed set and restart scanning
                let mut next: Vec<usize> = failed
                    .lits()
                    .iter()
                    .map(|l| selector_index(formula, *l))
                    .collect();
                next.sort_unstable();
                next.dedup();
                core = next;
                i = 0;
            }
            None => i += 1, // candidate is necessary — keep it
        }
    }
    Ok(MinimalCore { indices: core, num_queries })
}

/// Maps a failed-clause literal (a negated selector) back to its clause
/// index.
fn selector_index(formula: &CnfFormula, lit: Lit) -> usize {
    let idx = lit.var().idx();
    debug_assert!(idx >= formula.num_vars(), "literal is not a selector");
    idx - formula.num_vars()
}

/// Convenience: the paper's §4 core (from proof verification) followed
/// by MUS minimisation — the best of both worlds: the cheap verified
/// core narrows the search, the selector loop makes it minimal.
///
/// # Errors
///
/// See [`minimal_core`] and [`crate::solve_and_verify`].
pub fn minimal_core_of_verified(
    formula: &CnfFormula,
    config: SolverConfig,
) -> Result<MinimalCore, PipelineError> {
    // first narrow with the by-product core (usually much smaller input)
    let run = match crate::solve_and_verify(formula, config.clone())? {
        crate::PipelineOutcome::Unsat(run) => run,
        crate::PipelineOutcome::Sat(_) => return Err(PipelineError::BadModel),
    };
    let coarse = run.verification.core;
    let sub = coarse.to_formula(formula);
    let mus_of_sub = minimal_core(&sub, config)?;
    let indices: Vec<usize> = mus_of_sub
        .indices
        .iter()
        .map(|&i| coarse.indices()[i])
        .collect();
    Ok(MinimalCore { indices, num_queries: mus_of_sub.num_queries + 1 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdcl::solve;

    fn assert_is_mus(formula: &CnfFormula, mus: &MinimalCore) {
        let sub = mus.to_formula(formula);
        assert!(
            solve(&sub, SolverConfig::default()).is_unsat(),
            "MUS must be unsatisfiable"
        );
        for drop in 0..mus.indices.len() {
            let kept: Vec<usize> = mus
                .indices
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != drop)
                .map(|(_, &i)| i)
                .collect();
            let weakened = formula.subformula(&kept);
            assert!(
                solve(&weakened, SolverConfig::default()).is_sat(),
                "MUS minus clause {} must be satisfiable",
                mus.indices[drop]
            );
        }
    }

    #[test]
    fn chain_with_ballast() {
        let f = CnfFormula::from_dimacs_clauses(&[
            vec![1],
            vec![-1, 2],
            vec![-2],
            vec![3, 4],
            vec![-3, 4],
        ]);
        let mus = minimal_core(&f, SolverConfig::default()).expect("unsat");
        assert_eq!(mus.indices, vec![0, 1, 2]);
        assert_is_mus(&f, &mus);
    }

    #[test]
    fn pigeonhole_is_already_minimal() {
        let f = cnfgen::pigeonhole(4);
        let mus = minimal_core(&f, SolverConfig::default()).expect("unsat");
        assert_eq!(mus.len(), f.num_clauses(), "php is minimally unsatisfiable");
        assert_is_mus(&f, &mus);
    }

    #[test]
    fn overlapping_cores_yield_some_minimal_one() {
        // two independent contradictions: x1-chain and x2-chain; a MUS
        // is one of them, not both
        let f = CnfFormula::from_dimacs_clauses(&[
            vec![1],
            vec![-1],
            vec![2],
            vec![-2],
        ]);
        let mus = minimal_core(&f, SolverConfig::default()).expect("unsat");
        assert_eq!(mus.len(), 2);
        assert_is_mus(&f, &mus);
    }

    #[test]
    fn satisfiable_input_is_an_error() {
        let f = CnfFormula::from_dimacs_clauses(&[vec![1, 2]]);
        assert!(minimal_core(&f, SolverConfig::default()).is_err());
    }

    #[test]
    fn combined_extractor_agrees() {
        let mut f = cnfgen::pigeonhole(4);
        f.add_dimacs_clause(&[100, 101]);
        f.add_dimacs_clause(&[-100]);
        let php_clauses = f.num_clauses() - 2;
        let mus = minimal_core_of_verified(&f, SolverConfig::default()).expect("unsat");
        assert_eq!(mus.len(), php_clauses);
        assert_is_mus(&f, &mus);
    }

    #[test]
    fn xor_square_mus() {
        let mut f = CnfFormula::from_dimacs_clauses(&[
            vec![1, 2],
            vec![-1, -2],
            vec![1, -2],
            vec![-1, 2],
        ]);
        f.add_dimacs_clause(&[3, 4]); // ballast
        let mus = minimal_core(&f, SolverConfig::default()).expect("unsat");
        assert_eq!(mus.indices, vec![0, 1, 2, 3]);
        assert_is_mus(&f, &mus);
    }
}
